#include "kernels/kernels.hh"

#include "kernels/btc.hh"
#include "kernels/video_ext.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

const std::vector<KernelInfo> &
kernelTable()
{
    // Table IV: evaluated applications and domains, in the paper's
    // order.
    static const std::vector<KernelInfo> table = {
        { "AES", "Advanced Encryption Standard", "Cryptography" },
        { "BFS", "Breadth-First Search", "Graph Processing" },
        { "FFT", "Fast Fourier Transform", "Signal Processing" },
        { "GMM", "General Matrix Multiplication", "Linear Algebra" },
        { "MDY", "Molecular Dynamics", "Molecular Dynamics" },
        { "KNN", "K-Nearest Neighbors", "Data Mining" },
        { "NWN", "Needleman-Wunsch", "Bioinformatics" },
        { "RBM", "Restricted Boltzmann Machine", "Machine Learning" },
        { "RED", "Reduction", "Microbenchmarking" },
        { "SAD", "Sum of Absolute Differences", "Video Processing" },
        { "SRT", "Merge Sort", "Algorithms" },
        { "SMV", "Sparse Matrix-Vector Multiply", "Linear Algebra" },
        { "SSP", "Single Source, Shortest Path", "Graph Processing" },
        { "S2D", "2D Stencil", "Image Processing" },
        { "S3D", "3D Stencil", "Image Processing" },
        { "TRD", "Triad", "Microbenchmarking" },
    };
    return table;
}

dfg::Graph
makeKernel(const std::string &abbrev)
{
    if (abbrev == "AES") return makeAes();
    if (abbrev == "BFS") return makeBfs();
    if (abbrev == "FFT") return makeFft();
    if (abbrev == "GMM") return makeGmm();
    if (abbrev == "MDY") return makeMdy();
    if (abbrev == "KNN") return makeKnn();
    if (abbrev == "NWN") return makeNwn();
    if (abbrev == "RBM") return makeRbm();
    if (abbrev == "RED") return makeRed();
    if (abbrev == "SAD") return makeSad();
    if (abbrev == "SRT") return makeSrt();
    if (abbrev == "SMV") return makeSmv();
    if (abbrev == "SSP") return makeSsp();
    if (abbrev == "S2D") return makeS2d();
    if (abbrev == "S3D") return makeS3d();
    if (abbrev == "TRD") return makeTrd();
    // Extension kernels beyond Table IV.
    if (abbrev == "BTC") return makeBtc(false);
    if (abbrev == "BTC-AB") return makeBtc(true);
    if (abbrev == "IDCT") return makeIdct();
    if (abbrev == "ENT") return makeEnt();
    if (abbrev == "DFT") return makeDftNaive();
    fatal("unknown kernel abbreviation '", abbrev, "'");
}

} // namespace accelwall::kernels
