/**
 * @file
 * Sum-of-absolute-differences DFG (PARSEC x264 motion-estimation
 * pattern): one reference block matched against `candidates` candidate
 * blocks; per pair an absolute difference, per candidate an add tree,
 * then a global minimum (the best match).
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeSad(int block, int candidates)
{
    if (block < 1 || candidates < 1)
        fatal("makeSad: block and candidates must be >= 1");

    Graph g("SAD");
    int pixels = block * block;
    std::vector<NodeId> ref = loadArray(g, pixels);

    std::vector<NodeId> sads;
    sads.reserve(candidates);
    for (int c = 0; c < candidates; ++c) {
        std::vector<NodeId> cand = loadArray(g, pixels);
        std::vector<NodeId> diffs;
        diffs.reserve(pixels);
        for (int p = 0; p < pixels; ++p) {
            NodeId d = binary(g, OpType::Sub, ref[p], cand[p]);
            // |d| as a max against its negation (one extra node).
            diffs.push_back(binary(g, OpType::Max, d,
                                   unary(g, OpType::Sub, d)));
        }
        sads.push_back(reduceTree(g, std::move(diffs), OpType::Add));
    }

    NodeId best = reduceTree(g, std::move(sads), OpType::Min);
    storeAll(g, {best});
    return g;
}

} // namespace accelwall::kernels
