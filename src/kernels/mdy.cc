/**
 * @file
 * Molecular-dynamics force DFG (SHOC MD-style): per particle, a fixed
 * neighbor list; per pair, the 3-D distance, a Lennard-Jones-style force
 * magnitude (one divide), per-axis force components, and per-particle
 * accumulation trees.
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeMdy(int particles, int neighbors)
{
    if (particles < 2 || neighbors < 1)
        fatal("makeMdy: need >= 2 particles and >= 1 neighbor");

    Graph g("MDY");

    // Particle positions: x/y/z arrays.
    std::vector<NodeId> px = loadArray(g, particles);
    std::vector<NodeId> py = loadArray(g, particles);
    std::vector<NodeId> pz = loadArray(g, particles);

    std::vector<NodeId> forces;
    for (int i = 0; i < particles; ++i) {
        std::vector<NodeId> fx, fy, fz;
        for (int k = 1; k <= neighbors; ++k) {
            int j = (i + k) % particles;

            NodeId dx = binary(g, OpType::FSub, px[i], px[j]);
            NodeId dy = binary(g, OpType::FSub, py[i], py[j]);
            NodeId dz = binary(g, OpType::FSub, pz[i], pz[j]);

            NodeId r2 = binary(
                g, OpType::FAdd,
                binary(g, OpType::FAdd,
                       binary(g, OpType::FMul, dx, dx),
                       binary(g, OpType::FMul, dy, dy)),
                binary(g, OpType::FMul, dz, dz));

            // Force magnitude: inverse-power law needs one divide and
            // two multiplies (1/r2, then (1/r2)^3-ish shaping).
            NodeId inv = unary(g, OpType::FDiv, r2);
            NodeId inv3 = binary(g, OpType::FMul,
                                 binary(g, OpType::FMul, inv, inv), inv);

            fx.push_back(binary(g, OpType::FMul, inv3, dx));
            fy.push_back(binary(g, OpType::FMul, inv3, dy));
            fz.push_back(binary(g, OpType::FMul, inv3, dz));
        }
        forces.push_back(reduceTree(g, std::move(fx), OpType::FAdd));
        forces.push_back(reduceTree(g, std::move(fy), OpType::FAdd));
        forces.push_back(reduceTree(g, std::move(fz), OpType::FAdd));
    }

    storeAll(g, forces);
    return g;
}

} // namespace accelwall::kernels
