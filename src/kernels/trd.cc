/**
 * @file
 * STREAM-style triad DFG: a[i] = b[i] + s * c[i]. Two loads, one
 * multiply, one add, one store per element; zero reuse, fully
 * memory-bound and embarrassingly parallel.
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeTrd(int n)
{
    if (n < 1)
        fatal("makeTrd: n must be >= 1");

    Graph g("TRD");
    NodeId s = g.addNode(OpType::Load);

    std::vector<NodeId> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i) {
        NodeId b = g.addNode(OpType::Load);
        NodeId c = g.addNode(OpType::Load);
        NodeId sc = binary(g, OpType::FMul, s, c);
        out.push_back(binary(g, OpType::FAdd, b, sc));
    }

    storeAll(g, out);
    return g;
}

} // namespace accelwall::kernels
