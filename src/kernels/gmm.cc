/**
 * @file
 * Dense matrix-matrix multiply DFG: C = A * B with n x n operands. Each
 * output element is n FMuls folded by a balanced FAdd tree — the
 * canonical high-parallelism, high-reuse accelerator kernel.
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeGmm(int n)
{
    if (n < 1)
        fatal("makeGmm: n must be >= 1");

    Graph g("GMM");
    std::vector<NodeId> a = loadArray(g, static_cast<std::size_t>(n) * n);
    std::vector<NodeId> b = loadArray(g, static_cast<std::size_t>(n) * n);

    std::vector<NodeId> c;
    c.reserve(static_cast<std::size_t>(n) * n);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            std::vector<NodeId> prods;
            prods.reserve(n);
            for (int k = 0; k < n; ++k)
                prods.push_back(binary(g, OpType::FMul, a[i * n + k],
                                       b[k * n + j]));
            c.push_back(reduceTree(g, std::move(prods), OpType::FAdd));
        }
    }

    storeAll(g, c);
    return g;
}

} // namespace accelwall::kernels
