/**
 * @file
 * Bellman-Ford single-source shortest-path DFG: `iters` relaxation
 * sweeps over a fixed edge list. Distances flow between iterations as
 * dataflow values; each vertex folds its incoming relaxations with a
 * Min tree. Sequential sweeps bound the parallelism — the graph is wide
 * within an iteration but deep across iterations.
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeSsp(int vertices, int edges, int iters)
{
    if (vertices < 2 || edges < 1 || iters < 1)
        fatal("makeSsp: need >= 2 vertices, >= 1 edge, >= 1 iteration");

    Graph g("SSP");

    // Initial distances.
    std::vector<NodeId> dist = loadArray(g, vertices);

    // A fixed synthetic edge list (u, v): deterministic stride pattern
    // touching every vertex.
    std::vector<std::pair<int, int>> edge_list;
    edge_list.reserve(edges);
    for (int e = 0; e < edges; ++e) {
        int u = (e * 7 + 1) % vertices;
        int v = (e * 13 + 3) % vertices;
        if (u == v)
            v = (v + 1) % vertices;
        edge_list.emplace_back(u, v);
    }

    for (int it = 0; it < iters; ++it) {
        std::vector<std::vector<NodeId>> candidates(vertices);
        for (int v = 0; v < vertices; ++v)
            candidates[v].push_back(dist[v]);

        for (const auto &[u, v] : edge_list) {
            NodeId w = g.addNode(OpType::Load);
            candidates[v].push_back(
                binary(g, OpType::Add, dist[u], w));
        }

        for (int v = 0; v < vertices; ++v)
            dist[v] = reduceTree(g, std::move(candidates[v]),
                                 OpType::Min);
    }

    storeAll(g, dist);
    return g;
}

} // namespace accelwall::kernels
