/**
 * @file
 * AES encryption DFG: `rounds` rounds over a 16-byte state. Each round
 * applies SubBytes (S-box lookups), ShiftRows (pure wiring — a
 * permutation, no nodes), MixColumns (GF(2^8) multiplies + XOR folds;
 * skipped in the final round per the standard), and AddRoundKey.
 */

#include "kernels/kernels.hh"

#include <array>

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeAes(int rounds)
{
    if (rounds < 1)
        fatal("makeAes: rounds must be >= 1");

    Graph g("AES");
    std::vector<NodeId> state = loadArray(g, 16);

    // Initial AddRoundKey.
    std::vector<NodeId> key0 = loadArray(g, 16);
    for (int i = 0; i < 16; ++i)
        state[i] = binary(g, OpType::Xor, state[i], key0[i]);

    for (int r = 1; r <= rounds; ++r) {
        // SubBytes: one table lookup per byte.
        for (int i = 0; i < 16; ++i)
            state[i] = unary(g, OpType::Lut, state[i]);

        // ShiftRows: cyclic row rotations, wiring only.
        std::array<NodeId, 16> shifted;
        for (int row = 0; row < 4; ++row) {
            for (int col = 0; col < 4; ++col)
                shifted[row + 4 * col] =
                    state[row + 4 * ((col + row) % 4)];
        }
        for (int i = 0; i < 16; ++i)
            state[i] = shifted[i];

        // MixColumns (all but the last round): per output byte,
        // b'_i = 2*a_i ^ 3*a_{i+1} ^ a_{i+2} ^ a_{i+3}; the GF doubles
        // are Mul nodes, the folds XOR trees.
        if (r != rounds) {
            std::array<NodeId, 16> mixed;
            for (int col = 0; col < 4; ++col) {
                std::array<NodeId, 4> a;
                for (int i = 0; i < 4; ++i)
                    a[i] = state[4 * col + i];
                for (int i = 0; i < 4; ++i) {
                    NodeId two =
                        unary(g, OpType::Mul, a[i]); // xtime(a_i)
                    NodeId three = binary(
                        g, OpType::Xor,
                        unary(g, OpType::Mul, a[(i + 1) % 4]),
                        a[(i + 1) % 4]); // 3*x = 2*x ^ x
                    NodeId acc = binary(g, OpType::Xor, two, three);
                    acc = binary(g, OpType::Xor, acc, a[(i + 2) % 4]);
                    acc = binary(g, OpType::Xor, acc, a[(i + 3) % 4]);
                    mixed[4 * col + i] = acc;
                }
            }
            for (int i = 0; i < 16; ++i)
                state[i] = mixed[i];
        }

        // AddRoundKey with this round's expanded key bytes.
        std::vector<NodeId> key = loadArray(g, 16);
        for (int i = 0; i < 16; ++i)
            state[i] = binary(g, OpType::Xor, state[i], key[i]);
    }

    storeAll(g, state);
    return g;
}

} // namespace accelwall::kernels
