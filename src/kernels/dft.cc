/**
 * @file
 * Naive dense DFT DFG (extension kernel "DFT"): every output bin is a
 * full inner product with constant twiddles — O(n²) multiplies against
 * the FFT's O(n log n). The pair quantifies algorithm-layer CSR: same
 * problem, same physical budget, different algorithm.
 */

#include "kernels/kernels.hh"

#include "kernels/builder.hh"
#include "util/logging.hh"

namespace accelwall::kernels
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph
makeDftNaive(int n)
{
    if (n < 2)
        fatal("makeDftNaive: n must be >= 2");

    Graph g("DFT");
    std::vector<NodeId> re = loadArray(g, n);
    std::vector<NodeId> im = loadArray(g, n);

    std::vector<NodeId> outputs;
    for (int k = 0; k < n; ++k) {
        std::vector<NodeId> re_terms, im_terms;
        re_terms.reserve(n);
        im_terms.reserve(n);
        for (int t = 0; t < n; ++t) {
            // (re + j*im) * (c - j*s) with the twiddle folded into
            // unary multiplies.
            NodeId rc = unary(g, OpType::FMul, re[t]);
            NodeId is = unary(g, OpType::FMul, im[t]);
            NodeId rs = unary(g, OpType::FMul, re[t]);
            NodeId ic = unary(g, OpType::FMul, im[t]);
            re_terms.push_back(binary(g, OpType::FAdd, rc, is));
            im_terms.push_back(binary(g, OpType::FSub, ic, rs));
        }
        outputs.push_back(
            reduceTree(g, std::move(re_terms), OpType::FAdd));
        outputs.push_back(
            reduceTree(g, std::move(im_terms), OpType::FAdd));
    }

    storeAll(g, outputs);
    return g;
}

} // namespace accelwall::kernels
