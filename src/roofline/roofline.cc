#include "roofline/roofline.hh"

#include <algorithm>

#include "util/logging.hh"

namespace accelwall::roofline
{

double
Roofline::attainable(double intensity_op_per_byte) const
{
    if (intensity_op_per_byte <= 0.0)
        fatal("Roofline: operational intensity must be positive");
    double memory_roof =
        intensity_op_per_byte * bandwidth_gbs / 1e3; // GB/s*op/B -> TOPS
    return std::min(peak_tops, memory_roof);
}

Roofline
machineRoofline(const tpu::TpuConfig &config)
{
    tpu::TpuModel model(config);
    Roofline roof;
    roof.peak_tops = model.peakTops();
    roof.bandwidth_gbs = config.weight_bw_gbs;
    // Ridge: peak[TOPS] = I * BW[GB/s] / 1e3.
    roof.ridge_intensity = roof.peak_tops * 1e3 / roof.bandwidth_gbs;
    return roof;
}

Placement
placeLayer(const Roofline &roof, const nn::Layer &layer,
           int operand_bits)
{
    nn::LayerCost cost = nn::layerCost(layer);
    Placement out;
    out.name = layer.name;
    double ops = cost.macs * 2.0;
    double bytes =
        std::max(cost.params * operand_bits / 8.0, 1.0);
    out.intensity = ops / bytes;
    if (ops <= 0.0) {
        // Pooling: no MACs; pin to the memory roof's origin.
        out.intensity = 1.0;
        out.attainable_tops = roof.attainable(1.0);
        out.regime = Regime::MemoryBound;
        out.peak_fraction = out.attainable_tops / roof.peak_tops;
        return out;
    }
    out.attainable_tops = roof.attainable(out.intensity);
    out.regime = out.intensity >= roof.ridge_intensity
                     ? Regime::ComputeBound
                     : Regime::MemoryBound;
    out.peak_fraction = out.attainable_tops / roof.peak_tops;
    return out;
}

Placement
placeModel(const Roofline &roof, const std::string &name,
           const std::vector<nn::Layer> &layers, int operand_bits)
{
    double ops = 0.0, bytes = 0.0;
    for (const auto &layer : layers) {
        nn::LayerCost cost = nn::layerCost(layer);
        ops += cost.macs * 2.0;
        bytes += cost.params * operand_bits / 8.0;
    }
    if (bytes <= 0.0)
        fatal("placeModel: network has no parameters");

    Placement out;
    out.name = name;
    out.intensity = ops / bytes;
    out.attainable_tops = roof.attainable(out.intensity);
    out.regime = out.intensity >= roof.ridge_intensity
                     ? Regime::ComputeBound
                     : Regime::MemoryBound;
    out.peak_fraction = out.attainable_tops / roof.peak_tops;
    return out;
}

} // namespace accelwall::roofline
