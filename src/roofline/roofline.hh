/**
 * @file
 * Roofline analysis for the TPU-style accelerator model.
 *
 * The TPU paper (the Section V case study's source) analyzes its
 * workloads on a roofline: attainable throughput is the minimum of the
 * compute peak and operational intensity x memory bandwidth. This
 * module derives the roofline of a tpu::TpuConfig and places nn::
 * layers and networks on it — the quantitative backdrop for Table I's
 * memory-vs-compute specialization concepts.
 */

#ifndef ACCELWALL_ROOFLINE_ROOFLINE_HH
#define ACCELWALL_ROOFLINE_ROOFLINE_HH

#include <string>
#include <vector>

#include "nn/layers.hh"
#include "tpu/tpu_model.hh"

namespace accelwall::roofline
{

/** The two roofline regimes. */
enum class Regime
{
    MemoryBound,
    ComputeBound,
};

/** One workload placed on a roofline. */
struct Placement
{
    std::string name;
    /** Operations per byte of off-chip (weight) traffic. */
    double intensity = 0.0;
    /** Attainable throughput at that intensity, in TOPS. */
    double attainable_tops = 0.0;
    /** Which side of the ridge the workload sits on. */
    Regime regime = Regime::MemoryBound;
    /** Fraction of the compute peak attained. */
    double peak_fraction = 0.0;
};

/** A machine roofline. */
struct Roofline
{
    /** Compute peak in TOPS. */
    double peak_tops = 0.0;
    /** Off-chip bandwidth in GB/s. */
    double bandwidth_gbs = 0.0;
    /** Ridge point: the intensity where the roof flattens [op/B]. */
    double ridge_intensity = 0.0;

    /** Attainable TOPS at a given operational intensity. */
    double attainable(double intensity_op_per_byte) const;
};

/** Derive the roofline of a TPU configuration. */
Roofline machineRoofline(const tpu::TpuConfig &config);

/**
 * Place one layer on a roofline: intensity = 2*MACs / weight bytes
 * (activations stay on chip in the unified buffer).
 */
Placement placeLayer(const Roofline &roof, const nn::Layer &layer,
                     int operand_bits);

/** Place a whole network (aggregate intensity). */
Placement placeModel(const Roofline &roof, const std::string &name,
                     const std::vector<nn::Layer> &layers,
                     int operand_bits);

} // namespace accelwall::roofline

#endif // ACCELWALL_ROOFLINE_ROOFLINE_HH
