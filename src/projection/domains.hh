/**
 * @file
 * Per-domain accelerator-wall assembly (Section VII, Table V,
 * Figures 15-16): turns each case study's chip set into (physical
 * potential, gain) points, computes the 5nm limit chip's potential from
 * Table V's physical parameters, and runs both projection models.
 */

#ifndef ACCELWALL_PROJECTION_DOMAINS_HH
#define ACCELWALL_PROJECTION_DOMAINS_HH

#include <string>
#include <vector>

#include "projection/projection.hh"
#include "util/units.hh"

namespace accelwall::projection
{

/** The four projected computation domains. */
enum class Domain
{
    VideoDecoding,
    GpuGraphics,
    FpgaCnn,
    BitcoinMining,
};

/** One Table V row plus presentation metadata. */
struct DomainParams
{
    Domain domain;
    std::string name;
    std::string platform;
    /** Gain units for the two metrics. */
    std::string perf_units;
    std::string eff_units;
    /** Table V physical parameters, dimensionally typed. */
    units::SquareMillimeters min_die_mm2{0.0};
    units::SquareMillimeters max_die_mm2{0.0};
    units::Watts tdp_w{0.0};
    units::Megahertz freq_mhz{0.0};
};

/** Table V, in the paper's row order. */
const std::vector<DomainParams> &domainTable();

/** Lookup one row. */
const DomainParams &domainParams(Domain domain);

/** A fully assembled domain projection. */
struct DomainStudy
{
    DomainParams params;
    /** Observed (relative physical potential, absolute gain) points. */
    std::vector<stats::Point2> points;
    /** The projection over the Pareto frontier of those points. */
    ProjectionResult projection;
};

/**
 * Assemble and project one domain.
 *
 * @param domain Which case study.
 * @param use_efficiency False: the Figure 15 performance projection
 *        (largest Table V die). True: the Figure 16 energy-efficiency
 *        projection (smallest die — "we use largest dies for
 *        performance, and smallest dies for energy efficiency").
 */
DomainStudy projectDomain(Domain domain, bool use_efficiency);

} // namespace accelwall::projection

#endif // ACCELWALL_PROJECTION_DOMAINS_HH
