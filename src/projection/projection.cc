#include "projection/projection.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace accelwall::projection
{

ProjectionResult
projectFrontier(const std::vector<stats::Point2> &points, double phy_limit)
{
    if (phy_limit <= 0.0)
        fatal("projectFrontier: non-positive physical limit");

    ProjectionResult out;
    out.frontier = stats::paretoFrontier(points);
    if (out.frontier.size() < 2)
        fatal("projectFrontier: need at least two frontier points, got ",
              out.frontier.size());

    std::vector<double> xs, ys;
    for (const auto &p : out.frontier) {
        xs.push_back(p.x);
        ys.push_back(p.y);
    }

    out.linear = stats::fitLinear(xs, ys);
    out.log = stats::fitLog(xs, ys);
    out.phy_limit = phy_limit;

    out.best_observed = 0.0;
    for (const auto &p : out.frontier)
        out.best_observed = std::max(out.best_observed, p.y);

    out.linear_limit = std::max(out.linear(phy_limit), out.best_observed);
    out.log_limit = std::max(out.log(phy_limit), out.best_observed);
    out.linear_headroom = out.linear_limit / out.best_observed;
    out.log_headroom = out.log_limit / out.best_observed;
    return out;
}

BootstrapResult
bootstrapProjection(const std::vector<stats::Point2> &points,
                    double phy_limit, int resamples, std::uint64_t seed)
{
    if (points.size() < 2)
        fatal("bootstrapProjection: need at least two points");
    if (resamples < 10)
        fatal("bootstrapProjection: need at least 10 resamples");

    // Each resample draws from its own generator, seeded from a serial
    // master stream, so the result is identical for every job count.
    Rng seeder(seed);
    std::vector<std::uint64_t> seeds(
        static_cast<std::size_t>(resamples));
    for (auto &s : seeds)
        s = seeder.nextU64();

    struct ResampleLimit
    {
        bool usable = false;
        double linear = 0.0;
        double log = 0.0;
    };

    auto resample_limits = util::parallelMap(
        seeds, [&](std::uint64_t resample_seed) {
            Rng rng(resample_seed);
            std::vector<stats::Point2> sample;
            sample.reserve(points.size());
            for (std::size_t i = 0; i < points.size(); ++i) {
                int pick = rng.uniformInt(
                    0, static_cast<int>(points.size()) - 1);
                sample.push_back(points[static_cast<std::size_t>(pick)]);
            }
            auto frontier = stats::paretoFrontier(sample);
            // Skip degenerate resamples: the fits need at least two
            // distinct abscissae.
            if (frontier.size() < 2 ||
                frontier.front().x == frontier.back().x)
                return ResampleLimit{};

            std::vector<double> xs, ys;
            double best = 0.0;
            for (const auto &p : frontier) {
                xs.push_back(p.x);
                ys.push_back(p.y);
                best = std::max(best, p.y);
            }
            auto lin = stats::fitLinear(xs, ys);
            auto lg = stats::fitLog(xs, ys);
            return ResampleLimit{true,
                                 std::max(lin(phy_limit), best),
                                 std::max(lg(phy_limit), best)};
        });

    std::vector<double> linear_limits, log_limits;
    for (const auto &rl : resample_limits) {
        if (!rl.usable)
            continue;
        linear_limits.push_back(rl.linear);
        log_limits.push_back(rl.log);
    }

    if (linear_limits.size() < 10)
        fatal("bootstrapProjection: too few usable resamples (",
              linear_limits.size(), ")");

    auto percentile_band = [](std::vector<double> values) {
        std::sort(values.begin(), values.end());
        auto at = [&](double q) {
            std::size_t idx = static_cast<std::size_t>(
                q * static_cast<double>(values.size() - 1));
            return values[idx];
        };
        return Interval{at(0.10), at(0.90)};
    };

    BootstrapResult out;
    out.linear_limit = percentile_band(linear_limits);
    out.log_limit = percentile_band(log_limits);
    out.usable = static_cast<int>(linear_limits.size());
    return out;
}

} // namespace accelwall::projection
