/**
 * @file
 * Accelerator-wall projection models (Section VII, Equations 5-6,
 * Figures 15-16).
 *
 * For each domain the paper plots reported gains against CMOS-driven
 * physical potential, extracts the Pareto frontier, and fits two
 * projections:
 *
 *   Linear:      gain = alpha * phy + beta          (Eq. 5)
 *   Logarithmic: gain = alpha * ln(phy) + beta      (Eq. 6)
 *
 * evaluated at the physical potential a final-CMOS-node (5nm) chip with
 * the domain's Table V parameters could reach — the accelerator wall.
 */

#ifndef ACCELWALL_PROJECTION_PROJECTION_HH
#define ACCELWALL_PROJECTION_PROJECTION_HH

#include <cstdint>
#include <vector>

#include "stats/fits.hh"
#include "stats/pareto.hh"

namespace accelwall::projection
{

/** Result of projecting one domain/metric to the CMOS limit. */
struct ProjectionResult
{
    /** Pareto frontier of the observed (phy, gain) points. */
    std::vector<stats::Point2> frontier;
    /** Eq. 5 fit over the frontier. */
    stats::LinearFit linear;
    /** Eq. 6 fit over the frontier. */
    stats::LogFit log;
    /** Physical potential of the 5nm limit chip (same x units). */
    double phy_limit = 0.0;
    /** Projected gain at the wall under each model (same y units). */
    double linear_limit = 0.0;
    double log_limit = 0.0;
    /** Best gain observed so far (max frontier y). */
    double best_observed = 0.0;
    /** Remaining headroom: projected limit / best observed. */
    double linear_headroom = 0.0;
    double log_headroom = 0.0;
};

/**
 * Fit both projection models to the Pareto frontier of @p points
 * (x = relative physical potential, y = gain in domain units) and
 * evaluate them at @p phy_limit.
 *
 * Projections are clamped below at the best observed gain: the wall
 * cannot be lower than an already-manufactured chip.
 *
 * @pre at least two frontier points with distinct x.
 */
ProjectionResult projectFrontier(const std::vector<stats::Point2> &points,
                                 double phy_limit);

/** A percentile interval over bootstrap resamples. */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;
};

/** Bootstrap uncertainty of the projected wall. */
struct BootstrapResult
{
    /** 10th-90th percentile bands of the projected limits. */
    Interval linear_limit;
    Interval log_limit;
    /** Resamples that produced a usable frontier. */
    int usable = 0;
};

/**
 * Bootstrap the projection: resample the observed points with
 * replacement, re-extract the frontier, refit, and re-evaluate at
 * @p phy_limit. Degenerate resamples (frontiers with fewer than two
 * distinct x) are skipped. Resamples are evaluated in parallel
 * (util::defaultJobs() threads) with per-resample generators seeded
 * from a serial master stream: deterministic for a given seed and
 * independent of the job count.
 */
BootstrapResult bootstrapProjection(
    const std::vector<stats::Point2> &points, double phy_limit,
    int resamples = 200, std::uint64_t seed = 0xB007);

} // namespace accelwall::projection

#endif // ACCELWALL_PROJECTION_PROJECTION_HH
