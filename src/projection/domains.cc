#include "projection/domains.hh"

#include <string>

#include "csr/csr.hh"
#include "potential/model.hh"
#include "studies/bitcoin.hh"
#include "studies/fpga.hh"
#include "studies/gpu.hh"
#include "studies/video.hh"
#include "util/logging.hh"

namespace accelwall::projection
{

namespace
{

using csr::ChipGain;
using csr::Metric;
using potential::ChipSpec;
using potential::PotentialModel;

double
potentialOf(const PotentialModel &model, const ChipSpec &spec,
            Metric metric)
{
    // Projection points are ratios of like potentials, so the unit
    // types cancel; .raw() here only strips the (shared) scale.
    switch (metric) {
      case Metric::Throughput:
        return model.throughput(spec).raw();
      case Metric::EnergyEfficiency:
        return model.energyEfficiency(spec).raw();
      case Metric::AreaThroughput:
        return model.areaThroughput(spec).raw();
    }
    panic("projection: unknown metric");
}

/**
 * Build (relative phy, absolute gain) points from a chip series,
 * normalized to the first chip's potential, plus the limit chip's
 * relative potential.
 */
DomainStudy
assemble(const DomainParams &params, const std::vector<ChipGain> &chips,
         Metric metric, bool use_efficiency)
{
    if (chips.empty())
        fatal("projectDomain: empty chip series for ", params.name);

    PotentialModel model;
    double base = potentialOf(model, chips.front().spec, metric);

    DomainStudy study;
    study.params = params;
    for (const auto &chip : chips) {
        study.points.push_back(
            {potentialOf(model, chip.spec, metric) / base, chip.gain});
    }

    // The wall chip: final CMOS node with Table V's physical envelope.
    // Largest die for performance, smallest for efficiency.
    ChipSpec limit;
    limit.node_nm = units::Nanometers{5.0};
    limit.area_mm2 =
        use_efficiency ? params.min_die_mm2 : params.max_die_mm2;
    limit.freq_ghz = units::unit_cast<units::Gigahertz>(params.freq_mhz);
    limit.tdp_w = params.tdp_w;
    double phy_limit = potentialOf(model, limit, metric) / base;

    study.projection = projectFrontier(study.points, phy_limit);
    return study;
}

/** Frame rate to pixel rate: FHD = 2.0736 MPix, QHD = 3.6864 MPix. */
double
pixelsPerFrame(const std::string &app)
{
    if (app.find("QHD") != std::string::npos)
        return 3.6864;
    return 2.0736;
}

} // namespace

const std::vector<DomainParams> &
domainTable()
{
    // Table V: accelerator-wall physical parameters.
    using units::Megahertz;
    using units::SquareMillimeters;
    using units::Watts;
    static const std::vector<DomainParams> table = {
        { Domain::VideoDecoding, "Video Decoding", "ASIC", "MPixels/s",
          "MPixels/J", SquareMillimeters{1.68}, SquareMillimeters{16.0},
          Watts{7.0}, Megahertz{400.0} },
        { Domain::GpuGraphics, "Gaming/Graphics", "GPU", "MPixels/s",
          "MPixels/J", SquareMillimeters{40.0}, SquareMillimeters{815.0},
          Watts{345.0}, Megahertz{1500.0} },
        { Domain::FpgaCnn, "Convolutional NN", "FPGA", "GOP/s", "GOP/J",
          SquareMillimeters{100.0}, SquareMillimeters{572.0},
          Watts{150.0}, Megahertz{400.0} },
        { Domain::BitcoinMining, "Bitcoin Mining", "ASIC",
          "GHash/s/mm2", "GHash/J", SquareMillimeters{11.1},
          SquareMillimeters{504.0}, Watts{500.0}, Megahertz{1400.0} },
    };
    return table;
}

const DomainParams &
domainParams(Domain domain)
{
    for (const auto &row : domainTable()) {
        if (row.domain == domain)
            return row;
    }
    panic("domainParams: unknown domain");
}

DomainStudy
projectDomain(Domain domain, bool use_efficiency)
{
    const DomainParams &params = domainParams(domain);
    Metric metric = use_efficiency ? Metric::EnergyEfficiency
                                   : Metric::Throughput;

    switch (domain) {
      case Domain::VideoDecoding:
        return assemble(params, studies::videoChipGains(use_efficiency),
                        metric, use_efficiency);

      case Domain::GpuGraphics: {
        // Every benchmark result is a point; frame gains are converted
        // to pixel rates so resolutions share one axis.
        std::vector<ChipGain> chips;
        for (const auto &app : studies::gameApps()) {
            auto series =
                studies::gpuAppSeries(app.name, use_efficiency);
            double px = pixelsPerFrame(app.name);
            for (auto &chip : series) {
                chip.gain *= px;
                chips.push_back(std::move(chip));
            }
        }
        return assemble(params, chips, metric, use_efficiency);
      }

      case Domain::FpgaCnn: {
        // AlexNet and VGG-16 designs share the GOP/s axis (Fig. 15c
        // plots "AlexNet+VGG-16").
        std::vector<ChipGain> chips;
        for (const auto &model : {"AlexNet", "VGG-16"}) {
            for (auto &chip : studies::fpgaChipGains(
                     studies::fpgaDesignsFor(model), use_efficiency))
                chips.push_back(std::move(chip));
        }
        return assemble(params, chips, metric, use_efficiency);
      }

      case Domain::BitcoinMining: {
        // ASICs only: CPU/GPU/FPGA points sit far below the frontier
        // and the per-area axis is normalized to the first ASIC.
        Metric btc_metric = use_efficiency ? Metric::EnergyEfficiency
                                           : Metric::AreaThroughput;
        return assemble(params,
                        studies::miningChipGains(studies::miningAsics(),
                                                 use_efficiency),
                        btc_metric, use_efficiency);
      }
    }
    panic("projectDomain: unknown domain");
}

} // namespace accelwall::projection
