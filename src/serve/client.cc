#include "serve/client.hh"

#include "util/socket.hh"

namespace accelwall::serve
{

Result<HttpResponse>
httpRequest(const std::string &host, int port, const std::string &method,
            const std::string &target, const std::string &body,
            int deadline_ms)
{
    auto fd = util::tcpConnect(host, port, deadline_ms);
    if (!fd.ok())
        return fd.error();

    std::string wire = method + " " + target + " HTTP/1.1\r\n";
    wire += "Host: " + host + "\r\n";
    if (!body.empty())
        wire += "Content-Type: application/json\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    wire += "Connection: close\r\n\r\n";
    wire += body;

    if (auto sent = util::sendAll(fd.value().get(), wire, deadline_ms);
        !sent.ok())
        return sent.error();

    HttpLimits limits;
    limits.read_deadline_ms = deadline_ms;
    // Sweep responses can be large; the client reads whatever the
    // server is willing to emit.
    limits.max_body_bytes = 64 * 1024 * 1024;
    return readResponse(fd.value().get(), limits);
}

} // namespace accelwall::serve
