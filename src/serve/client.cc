#include "serve/client.hh"

#include <chrono>
#include <thread>

#include "util/rng.hh"
#include "util/socket.hh"

namespace accelwall::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Milliseconds left until @p deadline, clamped at >= 0. */
int
remainingMs(Clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/**
 * One wire attempt. @p sent_any is set once request bytes may have
 * reached the server — the line between "retry freely" and "retry
 * only if idempotent".
 */
Result<HttpResponse>
attemptOnce(const std::string &host, int port, const std::string &method,
            const std::string &target, const std::string &body,
            int deadline_ms, bool *sent_any)
{
    *sent_any = false;
    auto fd = util::tcpConnect(host, port, deadline_ms);
    if (!fd.ok())
        return fd.error();

    std::string wire = method + " " + target + " HTTP/1.1\r\n";
    wire += "Host: " + host + "\r\n";
    if (!body.empty())
        wire += "Content-Type: application/json\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    wire += "Connection: close\r\n\r\n";
    wire += body;

    *sent_any = true;
    if (auto sent = util::sendAll(fd.value().get(), wire, deadline_ms);
        !sent.ok())
        return sent.error();

    HttpLimits limits;
    limits.read_deadline_ms = deadline_ms;
    // Sweep responses can be large; the client reads whatever the
    // server is willing to emit.
    limits.max_body_bytes = 64 * 1024 * 1024;
    return readResponse(fd.value().get(), limits);
}

/** Parse a Retry-After header (delta-seconds form only); -1 if unusable. */
int
retryAfterMs(const HttpResponse &res)
{
    auto it = res.headers.find("retry-after");
    if (it == res.headers.end())
        return -1;
    const std::string &raw = it->second;
    if (raw.empty() || raw.size() > 4)
        return -1;
    int seconds = 0;
    for (char c : raw) {
        if (c < '0' || c > '9')
            return -1; // HTTP-date form: ignore, use backoff
        seconds = seconds * 10 + (c - '0');
    }
    return seconds * 1000;
}

} // namespace

Result<HttpResponse>
httpRequest(const std::string &host, int port, const std::string &method,
            const std::string &target, const std::string &body,
            int deadline_ms)
{
    bool sent_any = false;
    return attemptOnce(host, port, method, target, body, deadline_ms,
                       &sent_any);
}

const char *
breakerStateLabel(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed: return "closed";
      case BreakerState::Open: return "open";
      case BreakerState::HalfOpen: return "half-open";
    }
    return "?";
}

Client::Client(std::string host, int port, RetryPolicy retry,
               BreakerPolicy breaker)
    : host_(std::move(host)), port_(port), retry_(retry),
      breaker_(breaker)
{
}

Result<HttpResponse>
Client::get(const std::string &target)
{
    return request("GET", target, "", true);
}

Result<HttpResponse>
Client::post(const std::string &target, const std::string &body,
             bool idempotent)
{
    return request("POST", target, body, idempotent);
}

int
Client::backoffMs(std::uint64_t serial, int attempt,
                  int retry_after_ms) const
{
    if (retry_after_ms >= 0 && retry_.honor_retry_after) {
        return retry_after_ms < retry_.max_backoff_ms
                   ? retry_after_ms
                   : retry_.max_backoff_ms;
    }
    // Exponential base capped, then half fixed + half jittered. The
    // jitter draw is a pure function of (seed, serial, attempt): two
    // runs with the same seed back off identically, while concurrent
    // workers in one run still decorrelate (DESIGN §11).
    std::int64_t base = retry_.base_backoff_ms;
    for (int i = 1; i < attempt && base < retry_.max_backoff_ms; ++i)
        base *= 2;
    if (base > retry_.max_backoff_ms)
        base = retry_.max_backoff_ms;
    if (base <= 1)
        return static_cast<int>(base);
    Rng rng(retry_.jitter_seed ^ (serial * 0x9e3779b97f4a7c15ull) ^
            (static_cast<std::uint64_t>(attempt) << 32));
    std::int64_t half = base / 2;
    auto jitter = static_cast<std::int64_t>(
        rng.nextU64() % static_cast<std::uint64_t>(half + 1));
    return static_cast<int>(half + jitter);
}

Result<HttpResponse>
Client::request(const std::string &method, const std::string &target,
                const std::string &body, bool idempotent)
{
    const std::uint64_t serial =
        serial_.fetch_add(1, std::memory_order_relaxed);
    auto overall_deadline =
        Clock::now() +
        std::chrono::milliseconds(retry_.overall_deadline_ms);

    Error last_error = makeError(ErrorCode::ClientRetriesExhausted,
                                 "no attempt was made");
    for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
        Admit admit = breakerAdmit();
        if (admit == Admit::Reject) {
            fast_fails_.fetch_add(1, std::memory_order_relaxed);
            return makeError(ErrorCode::ClientCircuitOpen,
                             "circuit breaker open for ", host_, ":",
                             port_, " (", method, " ", target, ")");
        }
        const bool probe = admit == Admit::AllowProbe;

        int overall_left = remainingMs(overall_deadline);
        if (overall_left == 0) {
            return makeError(ErrorCode::ClientDeadline,
                             "overall deadline (",
                             retry_.overall_deadline_ms,
                             "ms) expired after ", attempt - 1,
                             " attempts: ", last_error.str());
        }
        int attempt_deadline =
            overall_left < retry_.attempt_deadline_ms
                ? overall_left
                : retry_.attempt_deadline_ms;

        if (attempt > 1) {
            retries_.fetch_add(1, std::memory_order_relaxed);
            if (metrics_ != nullptr)
                metrics_->recordRetry();
        }

        bool sent_any = false;
        auto res = attemptOnce(host_, port_, method, target, body,
                               attempt_deadline, &sent_any);

        if (res.ok()) {
            const HttpResponse &response = res.value();
            const bool try_again =
                response.status == 503 || response.status == 408;
            if (!try_again) {
                breakerOnSuccess();
                return res;
            }
            // An explicit shed: retryable regardless of idempotency
            // (the server promises it did not execute the request).
            breakerOnFailure(probe);
            if (attempt == retry_.max_attempts)
                return res; // surface the final 503/408 as-is
            int delay = backoffMs(serial, attempt,
                                  retryAfterMs(response));
            if (delay >= remainingMs(overall_deadline)) {
                return makeError(
                    ErrorCode::ClientDeadline, "overall deadline (",
                    retry_.overall_deadline_ms,
                    "ms) would expire during the ", delay,
                    "ms backoff after HTTP ", response.status);
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
            continue;
        }

        breakerOnFailure(probe);
        last_error = res.error();
        // Retry gate: a failure before any byte was sent is always
        // safe; afterwards only idempotent requests may be replayed.
        if (sent_any && !idempotent)
            return last_error;
        if (attempt == retry_.max_attempts)
            break;
        int delay = backoffMs(serial, attempt, -1);
        if (delay >= remainingMs(overall_deadline)) {
            return makeError(ErrorCode::ClientDeadline,
                             "overall deadline (",
                             retry_.overall_deadline_ms,
                             "ms) would expire during the ", delay,
                             "ms backoff: ", last_error.str());
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }

    return makeError(ErrorCode::ClientRetriesExhausted, "gave up after ",
                     retry_.max_attempts, " attempts (", method, " ",
                     target, "): ", last_error.str());
}

Client::Admit
Client::breakerAdmit()
{
    util::MutexLock lock(mu_);
    switch (state_) {
      case BreakerState::Closed:
        return Admit::Allow;
      case BreakerState::Open:
        if (++rejected_while_open_ > breaker_.cooldown_rejects) {
            state_ = BreakerState::HalfOpen;
            probe_inflight_ = true;
            publishStateLocked();
            return Admit::AllowProbe;
        }
        return Admit::Reject;
      case BreakerState::HalfOpen:
        if (probe_inflight_)
            return Admit::Reject; // one probe at a time
        probe_inflight_ = true;
        return Admit::AllowProbe;
    }
    return Admit::Allow;
}

void
Client::breakerOnSuccess()
{
    util::MutexLock lock(mu_);
    consecutive_failures_ = 0;
    probe_inflight_ = false;
    if (state_ != BreakerState::Closed) {
        state_ = BreakerState::Closed;
        publishStateLocked();
    }
}

void
Client::breakerOnFailure(bool was_probe)
{
    util::MutexLock lock(mu_);
    if (was_probe || state_ == BreakerState::HalfOpen) {
        // Failed probe: back to Open, restart the cooldown.
        state_ = BreakerState::Open;
        rejected_while_open_ = 0;
        probe_inflight_ = false;
        publishStateLocked();
        return;
    }
    if (state_ != BreakerState::Closed)
        return;
    if (++consecutive_failures_ >= breaker_.failure_threshold) {
        state_ = BreakerState::Open;
        rejected_while_open_ = 0;
        opens_.fetch_add(1, std::memory_order_relaxed);
        publishStateLocked();
    }
}

void
Client::publishStateLocked()
{
    if (metrics_ != nullptr)
        metrics_->setBreakerState(static_cast<int>(state_));
}

std::uint64_t
Client::retries() const
{
    return retries_.load(std::memory_order_relaxed);
}

std::uint64_t
Client::breakerFastFails() const
{
    return fast_fails_.load(std::memory_order_relaxed);
}

std::uint64_t
Client::breakerOpens() const
{
    return opens_.load(std::memory_order_relaxed);
}

BreakerState
Client::breakerState() const
{
    util::MutexLock lock(mu_);
    return state_;
}

} // namespace accelwall::serve
