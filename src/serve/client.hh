/**
 * @file
 * Minimal blocking HTTP client for the serve subsystem's own
 * consumers: the load generator and the test suite. One request per
 * connection, mirroring the server's Connection: close policy.
 */

#ifndef ACCELWALL_SERVE_CLIENT_HH
#define ACCELWALL_SERVE_CLIENT_HH

#include <string>

#include "serve/http.hh"
#include "util/error.hh"

namespace accelwall::serve
{

/**
 * Connect, send one request, read the response, close.
 *
 * @param host Server address ("127.0.0.1").
 * @param port Server port.
 * @param method "GET" or "POST".
 * @param target Request target, e.g. "/v1/gains".
 * @param body Request body ("" for GET).
 * @param deadline_ms Budget covering connect + send + full response.
 */
Result<HttpResponse> httpRequest(const std::string &host, int port,
                                 const std::string &method,
                                 const std::string &target,
                                 const std::string &body = "",
                                 int deadline_ms = 5000);

} // namespace accelwall::serve

#endif // ACCELWALL_SERVE_CLIENT_HH
