/**
 * @file
 * HTTP clients for the serve subsystem's own consumers: the load
 * generator, the chaos suite, and the tests. One request per
 * connection, mirroring the server's Connection: close policy.
 *
 * Two layers:
 *
 *  - httpRequest(): the primitive. Connect, send, read, close; any
 *    network hiccup is the caller's problem.
 *  - Client: the resilient wrapper the chaos suite is built around.
 *    Per-attempt and overall deadlines, exponential backoff with
 *    deterministic seeded jitter (no ambient randomness — reruns with
 *    the same seed retry at the same points), `Retry-After`-aware 503
 *    handling, idempotency-gated retries, and a circuit breaker with
 *    half-open probing. Terminal outcomes surface as stable E52xx
 *    codes (client-retries-exhausted, client-circuit-open,
 *    client-deadline); see README "Resilience" and DESIGN §11.
 *
 * The breaker deliberately measures its cooldown in *rejected
 * requests*, not wall time: chaos tests assert exact state sequences,
 * and a clock-based cooldown would make those assertions racy.
 */

#ifndef ACCELWALL_SERVE_CLIENT_HH
#define ACCELWALL_SERVE_CLIENT_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "serve/http.hh"
#include "serve/metrics.hh"
#include "util/error.hh"
#include "util/thread_annotations.hh"

namespace accelwall::serve
{

/**
 * Connect, send one request, read the response, close.
 *
 * @param host Server address ("127.0.0.1").
 * @param port Server port.
 * @param method "GET" or "POST".
 * @param target Request target, e.g. "/v1/gains".
 * @param body Request body ("" for GET).
 * @param deadline_ms Budget covering connect + send + full response.
 */
Result<HttpResponse> httpRequest(const std::string &host, int port,
                                 const std::string &method,
                                 const std::string &target,
                                 const std::string &body = "",
                                 int deadline_ms = 5000);

/** Retry/backoff knobs for Client. Defaults suit the test harness. */
struct RetryPolicy
{
    /** Total tries per request, including the first (>= 1). */
    int max_attempts = 4;
    /** Backoff before retry k is ~base * 2^(k-1), jittered. */
    int base_backoff_ms = 5;
    /** Cap on any single backoff, including honored Retry-After. */
    int max_backoff_ms = 200;
    /** Seed for the deterministic jitter (same seed, same delays). */
    std::uint64_t jitter_seed = 1;
    /** Wall budget for one connect+send+read attempt. */
    int attempt_deadline_ms = 2000;
    /** Wall budget for the whole request including backoffs. */
    int overall_deadline_ms = 10000;
    /** Use a 503's Retry-After header (seconds, capped) as the delay. */
    bool honor_retry_after = true;
};

/** Circuit-breaker knobs for Client. */
struct BreakerPolicy
{
    /** Consecutive attempt failures that trip Closed -> Open. */
    int failure_threshold = 5;
    /**
     * Attempts rejected while Open before the next one is let through
     * as the half-open probe. Counted in requests, not seconds, so
     * breaker trajectories are schedule-independent (DESIGN §11).
     */
    int cooldown_rejects = 2;
};

/** Breaker states; numeric values are the breaker_state gauge. */
enum class BreakerState
{
    Closed = 0,
    Open = 1,
    HalfOpen = 2,
};

/** "closed" / "open" / "half-open". */
const char *breakerStateLabel(BreakerState state);

/**
 * Resilient one-request-per-connection client for a single host:port.
 * Thread-safe; the breaker is shared across all threads using the
 * instance, which is the point — it models the callers' collective
 * view of the upstream's health.
 */
class Client
{
  public:
    Client(std::string host, int port, RetryPolicy retry = {},
           BreakerPolicy breaker = {});

    /** Publish retries/breaker state to @p metrics (may be null). */
    void setMetrics(Metrics *metrics) { metrics_ = metrics; }

    /**
     * Issue one request with retries. @p idempotent gates retrying
     * after bytes may have reached the server: a non-idempotent
     * request is only retried when the failure provably preceded the
     * send (connect phase) or the server said "try again" (503/408).
     *
     * Returns the final HttpResponse (any status) on convergence;
     * E5201 when attempts were exhausted on transport errors, E5202
     * when the breaker fast-failed the request, E5203 when the
     * overall deadline expired first. Non-retryable transport errors
     * pass through unchanged.
     */
    Result<HttpResponse> request(const std::string &method,
                                 const std::string &target,
                                 const std::string &body = "",
                                 bool idempotent = true);

    /** GET, always idempotent. */
    Result<HttpResponse> get(const std::string &target);

    /**
     * POST; @p idempotent should be true only when the endpoint is
     * safe to replay (all current /v1/ endpoints are pure queries).
     */
    Result<HttpResponse> post(const std::string &target,
                              const std::string &body,
                              bool idempotent = true);

    /** Retry attempts performed (total, all requests). */
    std::uint64_t retries() const;

    /** Requests fast-failed by the breaker. */
    std::uint64_t breakerFastFails() const;

    /** Closed -> Open transitions seen so far. */
    std::uint64_t breakerOpens() const;

    /** Current breaker state. */
    BreakerState breakerState() const;

  private:
    /** Verdict of breakerAdmit for one attempt. */
    enum class Admit
    {
        Allow,
        AllowProbe,
        Reject,
    };

    Admit breakerAdmit() EXCLUDES(mu_);
    void breakerOnSuccess() EXCLUDES(mu_);
    void breakerOnFailure(bool was_probe) EXCLUDES(mu_);
    void publishStateLocked() REQUIRES(mu_);

    /** Deterministic backoff before retry @p attempt of @p serial. */
    int backoffMs(std::uint64_t serial, int attempt,
                  int retry_after_ms) const;

    std::string host_;
    int port_;
    RetryPolicy retry_;
    BreakerPolicy breaker_;
    Metrics *metrics_ = nullptr;

    std::atomic<std::uint64_t> serial_{0};
    std::atomic<std::uint64_t> retries_{0};
    std::atomic<std::uint64_t> fast_fails_{0};
    std::atomic<std::uint64_t> opens_{0};

    mutable util::Mutex mu_;
    BreakerState state_ GUARDED_BY(mu_) = BreakerState::Closed;
    int consecutive_failures_ GUARDED_BY(mu_) = 0;
    int rejected_while_open_ GUARDED_BY(mu_) = 0;
    bool probe_inflight_ GUARDED_BY(mu_) = false;
};

} // namespace accelwall::serve

#endif // ACCELWALL_SERVE_CLIENT_HH
