/**
 * @file
 * The query service's endpoint logic, socket-free and fully
 * unit-testable: HttpRequest in, HttpResponse out.
 *
 * Endpoints:
 *   POST /v1/gains  CMOS potential + gains for one ChipSpec vs a
 *                   reference (Fig. 3d / Eq. 2 denominator).
 *   POST /v1/csr    CSR series over a submitted gain table (Eq. 1-2).
 *   POST /v1/sweep  A bounded Section-VI design-space sweep, fanned
 *                   out on the shared util::ThreadPool.
 *   POST /v1/chiplet A bounded chiplet-partitioning sweep: K x node
 *                   grid with cost-normalized gains (chiplet/sweep.hh).
 *   GET  /healthz   Liveness + version.
 *   GET  /metrics   Prometheus exposition (requests, latency
 *                   histogram, cache counters).
 *
 * Failures map from stable error codes to HTTP statuses (see
 * httpStatusFor) with structured JSON bodies:
 *
 *   {"error": {"code": "E1101", "label": "json-parse",
 *              "message": "...", "line": 3, "column": 7}}
 *
 * Successful gains/csr/sweep responses are cached in a sharded LRU
 * keyed by (endpoint, body); hits return the exact cached bytes, so
 * repeated identical queries are byte-identical.
 */

#ifndef ACCELWALL_SERVE_SERVICE_HH
#define ACCELWALL_SERVE_SERVICE_HH

#include <cstddef>
#include <string>

#include "potential/model.hh"
#include "serve/cache.hh"
#include "serve/http.hh"
#include "serve/metrics.hh"
#include "util/error.hh"

namespace accelwall::serve
{

/** Service-level knobs (framing limits live in HttpLimits). */
struct ServiceOptions
{
    /** Result-cache entry budget (0 disables caching). */
    std::size_t cache_entries = 1024;
    /** Result-cache shard count. */
    std::size_t cache_shards = 8;
    /**
     * Upper bound on nodes x partitions x simplifications per
     * /v1/sweep request; larger grids are rejected with 413 E5007.
     */
    std::size_t max_sweep_cells = 512;
    /** Upper bound on chips per /v1/csr request. */
    std::size_t max_csr_chips = 1024;
    /**
     * Upper bound on chiplets x nodes per /v1/chiplet request; larger
     * grids are rejected with 413 E5010.
     */
    std::size_t max_chiplet_cells = 256;
    /** Worker threads per sweep request (0 = util::defaultJobs()). */
    int sweep_jobs = 0;
    /** Reported by /healthz. */
    std::string version = "unknown";
};

/** HTTP status for a stable error code (part of the interface). */
int httpStatusFor(ErrorCode code);

/** Structured JSON error body for @p error. */
std::string errorBody(const Error &error);

/** Build the full error response (status + JSON body) for @p error. */
HttpResponse errorResponse(const Error &error);

/**
 * The dispatcher. Thread-safe: handle() may be called concurrently
 * from every server worker (the model is immutable after
 * construction, the cache is internally sharded, metrics are
 * atomic).
 */
class Service
{
  public:
    explicit Service(ServiceOptions options = {});

    /** Route and execute one request. Never throws; never fatal()s. */
    HttpResponse handle(const HttpRequest &request);

    Metrics &metrics() { return metrics_; }
    const Metrics &metrics() const { return metrics_; }
    ResultCache &cache() { return cache_; }
    const ServiceOptions &options() const { return options_; }

  private:
    HttpResponse handleGains(const HttpRequest &request);
    HttpResponse handleCsr(const HttpRequest &request);
    HttpResponse handleSweep(const HttpRequest &request);
    HttpResponse handleChiplet(const HttpRequest &request);
    HttpResponse handleHealthz() const;
    HttpResponse handleMetrics() const;

    /** Serve from cache or compute-and-fill. */
    HttpResponse cachedPost(
        const HttpRequest &request, const char *endpoint,
        Result<std::string> (Service::*compute)(const std::string &));

    Result<std::string> computeGains(const std::string &body);
    Result<std::string> computeCsr(const std::string &body);
    Result<std::string> computeSweep(const std::string &body);
    Result<std::string> computeChiplet(const std::string &body);

    ServiceOptions options_;
    potential::PotentialModel model_;
    ResultCache cache_;
    Metrics metrics_;
};

} // namespace accelwall::serve

#endif // ACCELWALL_SERVE_SERVICE_HH
