#include "serve/http.hh"

#include <algorithm>
#include <cctype>
#include <chrono>

#include "util/socket.hh"

namespace accelwall::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

int
remainingMs(Clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t begin = s.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    std::size_t end = s.find_last_not_of(" \t");
    return s.substr(begin, end - begin + 1);
}

/**
 * Read until @p marker appears in @p buf or a limit/deadline trips.
 * Bytes past the marker stay in @p buf (the body prefix).
 */
Result<std::size_t>
readUntil(int fd, std::string &buf, const std::string &marker,
          std::size_t max_bytes, Clock::time_point deadline)
{
    while (true) {
        std::size_t pos = buf.find(marker);
        if (pos != std::string::npos)
            return pos;
        if (buf.size() >= max_bytes) {
            return makeError(ErrorCode::HttpMalformed,
                             "request head exceeds ", max_bytes,
                             " bytes");
        }
        int left = remainingMs(deadline);
        if (left == 0) {
            return makeError(ErrorCode::HttpDeadline,
                             "request not received before the deadline");
        }
        auto got = util::recvSome(fd, buf, 4096, left);
        if (!got.ok())
            return got.error();
        if (got.value() == 0) {
            return makeError(ErrorCode::HttpMalformed,
                             "connection closed mid-request");
        }
    }
}

} // namespace

const std::string &
HttpRequest::header(const std::string &name) const
{
    static const std::string kEmpty;
    auto it = headers.find(toLower(name));
    return it == headers.end() ? kEmpty : it->second;
}

const char *
statusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 413: return "Payload Too Large";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      case 503: return "Service Unavailable";
      default: return "Unknown";
    }
}

Result<HttpRequest>
parseRequestHead(const std::string &head, const HttpLimits &limits)
{
    if (head.size() > limits.max_head_bytes + 4) {
        return makeError(ErrorCode::HttpMalformed,
                         "request head exceeds ", limits.max_head_bytes,
                         " bytes");
    }
    std::size_t head_end = head.find("\r\n\r\n");
    if (head_end == std::string::npos) {
        return makeError(ErrorCode::HttpMalformed,
                         "truncated request head (no blank line)");
    }

    HttpRequest req;
    std::size_t pos = 0;
    std::size_t line_end = head.find("\r\n", pos);
    std::string request_line = head.substr(pos, line_end - pos);

    std::size_t sp1 = request_line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        request_line.find(' ', sp2 + 1) != std::string::npos) {
        return makeError(ErrorCode::HttpMalformed,
                         "malformed request line '", request_line, "'");
    }
    req.method = request_line.substr(0, sp1);
    req.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    req.version = request_line.substr(sp2 + 1);

    if (req.method.empty() || req.target.empty() || req.target[0] != '/') {
        return makeError(ErrorCode::HttpMalformed,
                         "malformed request line '", request_line, "'");
    }
    for (char c : req.method) {
        if (!std::isupper(static_cast<unsigned char>(c))) {
            return makeError(ErrorCode::HttpMalformed, "bad method '",
                             req.method, "'");
        }
    }
    if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0") {
        return makeError(ErrorCode::HttpMalformed,
                         "unsupported protocol version '", req.version,
                         "'");
    }

    pos = line_end + 2;
    while (pos < head_end) {
        line_end = head.find("\r\n", pos);
        std::string line = head.substr(pos, line_end - pos);
        pos = line_end + 2;
        if (line.empty())
            break;
        if (line[0] == ' ' || line[0] == '\t') {
            return makeError(ErrorCode::HttpMalformed,
                             "obsolete header folding not supported");
        }
        std::size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0) {
            return makeError(ErrorCode::HttpMalformed,
                             "malformed header line '", line, "'");
        }
        std::string name = line.substr(0, colon);
        if (name.find(' ') != std::string::npos ||
            name.find('\t') != std::string::npos) {
            return makeError(ErrorCode::HttpMalformed,
                             "whitespace in header name '", name, "'");
        }
        req.headers[toLower(name)] = trim(line.substr(colon + 1));
    }
    return req;
}

Result<std::size_t>
contentLength(const HttpRequest &request, const HttpLimits &limits)
{
    if (!request.header("transfer-encoding").empty()) {
        return makeError(ErrorCode::HttpMalformed,
                         "transfer-encoding not supported");
    }
    const std::string &raw = request.header("content-length");
    if (raw.empty())
        return std::size_t{0};
    if (raw.size() > 12 ||
        !std::all_of(raw.begin(), raw.end(), [](unsigned char c) {
            return std::isdigit(c);
        })) {
        return makeError(ErrorCode::HttpMalformed,
                         "bad content-length '", raw, "'");
    }
    std::size_t length = std::stoull(raw);
    if (length > limits.max_body_bytes) {
        return makeError(ErrorCode::HttpBodyTooLarge, "declared body of ",
                         length, " bytes exceeds the ",
                         limits.max_body_bytes, "-byte limit");
    }
    return length;
}

Result<HttpRequest>
readRequest(int fd, const HttpLimits &limits)
{
    auto deadline =
        Clock::now() + std::chrono::milliseconds(limits.read_deadline_ms);
    // The head gets its own, tighter budget: a slow-loris peer must
    // not be able to hold a handler for the whole request deadline by
    // dripping one header byte at a time.
    int head_ms = limits.head_read_deadline_ms < limits.read_deadline_ms
                      ? limits.head_read_deadline_ms
                      : limits.read_deadline_ms;
    auto head_deadline =
        Clock::now() + std::chrono::milliseconds(head_ms);
    std::string buf;
    auto head_end = readUntil(fd, buf, "\r\n\r\n", limits.max_head_bytes,
                              head_deadline);
    if (!head_end.ok())
        return head_end.error();

    std::size_t body_start = head_end.value() + 4;
    auto parsed = parseRequestHead(buf.substr(0, body_start), limits);
    if (!parsed.ok())
        return parsed.error();
    HttpRequest req = std::move(parsed).value();

    auto length = contentLength(req, limits);
    if (!length.ok())
        return length.error();

    req.body = buf.substr(body_start);
    while (req.body.size() < length.value()) {
        int left = remainingMs(deadline);
        if (left == 0) {
            return makeError(ErrorCode::HttpDeadline,
                             "body not received before the deadline");
        }
        auto got = util::recvSome(
            fd, req.body, length.value() - req.body.size(), left);
        if (!got.ok())
            return got.error();
        if (got.value() == 0) {
            return makeError(ErrorCode::HttpMalformed,
                             "connection closed mid-body");
        }
    }
    req.body.resize(length.value());
    return req;
}

std::string
serializeResponse(const HttpResponse &response)
{
    std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                      statusReason(response.status) + "\r\n";
    out += "Content-Type: " + response.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) +
           "\r\n";
    for (const auto &[name, value] : response.headers)
        out += name + ": " + value + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += response.body;
    return out;
}

Result<HttpResponse>
readResponse(int fd, const HttpLimits &limits)
{
    auto deadline =
        Clock::now() + std::chrono::milliseconds(limits.read_deadline_ms);
    std::string buf;
    auto head_end =
        readUntil(fd, buf, "\r\n\r\n", limits.max_head_bytes, deadline);
    if (!head_end.ok())
        return head_end.error();
    std::size_t body_start = head_end.value() + 4;
    std::string head = buf.substr(0, body_start);

    HttpResponse res;
    std::size_t line_end = head.find("\r\n");
    std::string status_line = head.substr(0, line_end);
    // "HTTP/1.1 200 OK"
    std::size_t sp1 = status_line.find(' ');
    if (sp1 == std::string::npos || sp1 + 4 > status_line.size()) {
        return makeError(ErrorCode::HttpMalformed,
                         "malformed status line '", status_line, "'");
    }
    std::string code = status_line.substr(sp1 + 1, 3);
    if (!std::all_of(code.begin(), code.end(), [](unsigned char c) {
            return std::isdigit(c);
        })) {
        return makeError(ErrorCode::HttpMalformed, "bad status code '",
                         code, "'");
    }
    res.status = std::stoi(code);

    // Headers: reuse the request parser's conventions via a fake head.
    std::map<std::string, std::string> headers;
    std::size_t pos = line_end + 2;
    while (pos < body_start - 2) {
        std::size_t eol = head.find("\r\n", pos);
        std::string line = head.substr(pos, eol - pos);
        pos = eol + 2;
        if (line.empty())
            break;
        std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        headers[toLower(line.substr(0, colon))] =
            trim(line.substr(colon + 1));
    }
    res.headers = headers;
    auto ct = headers.find("content-type");
    if (ct != headers.end())
        res.content_type = ct->second;

    std::size_t length = 0;
    auto cl = headers.find("content-length");
    if (cl != headers.end()) {
        const std::string &raw = cl->second;
        if (raw.empty() || raw.size() > 12 ||
            !std::all_of(raw.begin(), raw.end(), [](unsigned char c) {
                return std::isdigit(c);
            })) {
            return makeError(ErrorCode::HttpMalformed,
                             "bad content-length '", raw, "'");
        }
        length = std::stoull(raw);
        if (length > limits.max_body_bytes) {
            return makeError(ErrorCode::HttpBodyTooLarge,
                             "response body of ", length,
                             " bytes exceeds the ",
                             limits.max_body_bytes, "-byte limit");
        }
    }

    res.body = buf.substr(body_start);
    while (res.body.size() < length) {
        int left = remainingMs(deadline);
        if (left == 0) {
            return makeError(ErrorCode::HttpDeadline,
                             "response body not received before the "
                             "deadline");
        }
        auto got = util::recvSome(fd, res.body,
                                  length - res.body.size(), left);
        if (!got.ok())
            return got.error();
        if (got.value() == 0) {
            return makeError(ErrorCode::HttpMalformed,
                             "connection closed mid-body");
        }
    }
    res.body.resize(length);
    return res;
}

} // namespace accelwall::serve
