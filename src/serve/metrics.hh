/**
 * @file
 * Service metrics in Prometheus exposition format.
 *
 * A fixed, bounded metric set — no dynamic label registration, so
 * label cardinality cannot blow up under adversarial request paths:
 *
 *   accelwall_requests_total{endpoint,status}  counter
 *   accelwall_requests_shed_total              counter (admission 503s)
 *   accelwall_request_duration_seconds         histogram (all requests)
 *   accelwall_inflight_requests                gauge
 *   accelwall_cache_{hits,misses,evictions,insertions}_total
 *   accelwall_cache_entries / accelwall_cache_hit_ratio
 *   accelwall_connection_aborts_total{cause}   counter (chaos triage)
 *   accelwall_retries_total                    counter (client retries)
 *   accelwall_breaker_state                    gauge (0/1/2 = C/O/HO)
 *   accelwall_faults_injected_total            counter (FaultPlan)
 *
 * Counters are relaxed atomics: every hot-path touch is a single
 * fetch_add, and Prometheus scrapes tolerate torn-across-counters
 * snapshots by design.
 */

#ifndef ACCELWALL_SERVE_METRICS_HH
#define ACCELWALL_SERVE_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "serve/cache.hh"

namespace accelwall::serve
{

/** The bounded endpoint label set. */
enum class Endpoint
{
    Gains,
    Csr,
    Sweep,
    Chiplet,
    Healthz,
    Metrics,
    Other,
};
inline constexpr int kNumEndpoints = 7;

/** Label value, e.g. "/v1/gains" or "other". */
const char *endpointLabel(Endpoint ep);

/** Classify a request target into the bounded label set. */
Endpoint classifyEndpoint(const std::string &target);

/** The bounded status label set (per-class, not per-code). */
enum class StatusClass
{
    Ok2xx,
    ClientError4xx,
    ServerError5xx,
};
inline constexpr int kNumStatusClasses = 3;

/** "2xx" / "4xx" / "5xx". */
const char *statusClassLabel(StatusClass sc);

/** Map an HTTP status code to its class label. */
StatusClass classifyStatus(int status);

/**
 * The bounded label set for connections dropped without a complete
 * request/response exchange — the chaos suite's triage dimension.
 */
enum class AbortCause
{
    /** accept-time failure (ECONNABORTED or injected accept-fail). */
    AcceptFault,
    /** head/body read deadline hit (slow-loris, stalled peer). */
    ReadTimeout,
    /** unreadable request: recv error or unanswerable framing. */
    ReadError,
    /** response write failed (peer reset, mid-body drop). */
    WriteError,
};
inline constexpr int kNumAbortCauses = 4;

/** Label value, e.g. "read-timeout". */
const char *abortCauseLabel(AbortCause cause);

/**
 * Latency histogram bucket upper bounds, seconds. Cumulative buckets
 * plus +Inf are rendered per the Prometheus histogram convention.
 */
inline constexpr std::array<double, 14> kLatencyBucketsSeconds = {
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025,  0.05,    0.1,    0.25,  0.5,    1.0,   2.5,
};

/** All service counters; one instance per Server. */
class Metrics
{
  public:
    Metrics() = default;

    /** Count one finished request and observe its latency. */
    void recordRequest(Endpoint ep, int status, double seconds);

    /** Count one connection shed by admission control. */
    void recordShed();

    /** Count one aborted connection, by cause. */
    void recordAbort(AbortCause cause);

    /** Count one client retry attempt (resilient serve::Client). */
    void recordRetry();

    /** Publish the client circuit-breaker state (0/1/2 = C/O/HO). */
    void setBreakerState(int state);

    void incInflight();
    void decInflight();

    std::uint64_t requestCount(Endpoint ep, StatusClass sc) const;
    std::uint64_t totalRequests() const;
    std::uint64_t shedCount() const;
    std::uint64_t abortCount(AbortCause cause) const;
    std::uint64_t retriesTotal() const;
    int breakerState() const;
    std::int64_t inflight() const;

    /**
     * Render the full exposition document, folding in the result
     * cache's counters.
     */
    std::string renderPrometheus(const CacheStats &cache) const;

  private:
    std::array<std::atomic<std::uint64_t>,
               kNumEndpoints * kNumStatusClasses>
        requests_{};
    std::array<std::atomic<std::uint64_t>,
               kLatencyBucketsSeconds.size()>
        latency_buckets_{};
    std::atomic<std::uint64_t> latency_count_{0};
    /** Sum in nanoseconds so the hot path stays integer-atomic. */
    std::atomic<std::uint64_t> latency_sum_ns_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::array<std::atomic<std::uint64_t>, kNumAbortCauses> aborts_{};
    std::atomic<std::uint64_t> retries_{0};
    std::atomic<int> breaker_state_{0};
    std::atomic<std::int64_t> inflight_{0};
};

} // namespace accelwall::serve

#endif // ACCELWALL_SERVE_METRICS_HH
