/**
 * @file
 * Sharded LRU result cache for the query service.
 *
 * Keys are FNV-1a 64-bit hashes of (endpoint, request body); the top
 * hash bits pick the shard so concurrent requests to different shards
 * never contend on one mutex. Each shard is an intrusive LRU: a doubly
 * linked list of entries plus a hash index. Entries store the full
 * request text alongside the response, so a (vanishingly unlikely)
 * 64-bit hash collision degrades to a miss instead of serving the
 * wrong chip's numbers.
 *
 * Hits return the exact bytes inserted — the service caches fully
 * serialized response bodies, which is what makes repeated identical
 * queries byte-identical (tested in test_serve.cc).
 */

#ifndef ACCELWALL_SERVE_CACHE_HH
#define ACCELWALL_SERVE_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.hh"

namespace accelwall::serve
{

/** FNV-1a 64-bit over the bytes of @p data. */
std::uint64_t fnv1a64(const std::string &data);

/** FNV-1a 64-bit continuing from a previous hash state. */
std::uint64_t fnv1a64(const std::string &data, std::uint64_t seed);

/** Monotonic counters; a consistent snapshot of one cache's life. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /** Entries currently resident across all shards. */
    std::size_t entries = 0;

    /** hits / (hits + misses); 0 before any lookup. */
    double hitRatio() const;
};

/**
 * Thread-safe sharded LRU mapping request text to response bytes.
 *
 * capacity is the total entry budget, split evenly across shards
 * (each shard holds at least one entry). A capacity of 0 disables
 * caching: lookups miss, inserts drop.
 */
class ResultCache
{
  public:
    /**
     * @param capacity Total entries across all shards.
     * @param shards Shard count; clamped to [1, 64].
     */
    explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

    /**
     * Look up the response cached for (endpoint, request). The key is
     * hashed from both; on a hash match the stored request text is
     * compared before the hit counts.
     */
    std::optional<std::string> lookup(const std::string &endpoint,
                                      const std::string &request);

    /** Insert/refresh the response for (endpoint, request). */
    void insert(const std::string &endpoint, const std::string &request,
                std::string response);

    /** Aggregate counters over all shards. */
    CacheStats stats() const;

    std::size_t capacity() const { return capacity_; }
    std::size_t shardCount() const { return shards_.size(); }

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        std::string request;
        std::string response;
    };

    struct Shard
    {
        mutable util::Mutex mu;
        /** MRU at front, LRU at back. */
        std::list<Entry> lru GUARDED_BY(mu);
        std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
            index GUARDED_BY(mu);
        std::uint64_t hits GUARDED_BY(mu) = 0;
        std::uint64_t misses GUARDED_BY(mu) = 0;
        std::uint64_t insertions GUARDED_BY(mu) = 0;
        std::uint64_t evictions GUARDED_BY(mu) = 0;
    };

    /** Combined key text: endpoint + '\n' + request. */
    static std::uint64_t keyOf(const std::string &endpoint,
                               const std::string &request);

    Shard &shardFor(std::uint64_t key);
    const Shard &shardFor(std::uint64_t key) const;

    std::size_t capacity_;
    std::size_t per_shard_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace accelwall::serve

#endif // ACCELWALL_SERVE_CACHE_HH
