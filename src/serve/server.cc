#include "serve/server.hh"

#include <atomic>
#include <chrono>
#include <csignal>

#include "util/logging.hh"

namespace accelwall::serve
{

namespace
{

/**
 * The wake-pipe write target for the process's signal handlers. A
 * lock-free slot because signal handlers may only touch
 * async-signal-safe state.
 */
std::atomic<const util::WakePipe *> g_signal_pipe{nullptr};

extern "C" void
stopSignalHandler(int)
{
    const util::WakePipe *pipe =
        g_signal_pipe.load(std::memory_order_acquire);
    if (pipe)
        pipe->poke(); // one async-signal-safe write(2)
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(options_.service)
{
    if (options_.workers < 1)
        options_.workers = 1;
}

Server::~Server()
{
    if (started_ && !joined_)
        stop();
    if (g_signal_pipe.load(std::memory_order_acquire) == &wake_)
        g_signal_pipe.store(nullptr, std::memory_order_release);
}

Result<void>
Server::start()
{
    if (started_)
        panic("Server::start() called twice");
    auto listener = util::tcpListen(options_.host, options_.port);
    if (!listener.ok())
        return listener.error();
    listen_fd_ = std::move(listener.value().fd);
    port_ = listener.value().port;

    started_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
    handlers_.reserve(static_cast<std::size_t>(options_.workers));
    for (int i = 0; i < options_.workers; ++i)
        handlers_.emplace_back([this] { handlerLoop(); });
    return {};
}

void
Server::requestStop()
{
    wake_.poke();
}

void
Server::installSignalHandlers()
{
    g_signal_pipe.store(&wake_, std::memory_order_release);
    struct sigaction sa{};
    sa.sa_handler = stopSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // interrupt blocking calls so the drain is prompt
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    // Belt and braces on top of MSG_NOSIGNAL: a peer resetting
    // mid-write must never be able to kill the daemon.
    struct sigaction ign{};
    ign.sa_handler = SIG_IGN;
    sigemptyset(&ign.sa_mask);
    sigaction(SIGPIPE, &ign, nullptr);
}

void
Server::waitUntilStopped()
{
    if (!started_ || joined_)
        return;
    if (acceptor_.joinable())
        acceptor_.join();
    for (std::thread &t : handlers_) {
        if (t.joinable())
            t.join();
    }
    joined_ = true;
}

void
Server::stop()
{
    requestStop();
    waitUntilStopped();
}

void
Server::acceptLoop()
{
    while (true) {
        auto woke = util::pollReadable(listen_fd_.get(), wake_.readFd(),
                                       -1);
        if (!woke.ok())
            continue; // EINTR; the self-pipe carries the real signal
        if (woke.value() == wake_.readFd()) {
            wake_.drain();
            break;
        }
        auto conn = util::tcpAccept(listen_fd_.get());
        if (!conn.ok()) {
            if (conn.error().code() == ErrorCode::ServeConnection) {
                // Transient (ECONNABORTED or injected accept-fail):
                // the peer is gone, count it and keep accepting.
                service_.metrics().recordAbort(AbortCause::AcceptFault);
                continue;
            }
            break; // listener gone: treat as a stop request
        }
        bool accepted = false;
        {
            util::MutexLock lock(mu_);
            if (queue_.size() < options_.accept_queue) {
                queue_.push_back(std::move(conn.value()));
                accepted = true;
            }
        }
        if (accepted) {
            cv_.notify_one();
        } else {
            shed(std::move(conn.value()));
        }
    }

    // Drain: stop listening so new connections are refused by the OS,
    // then let the handlers finish the accepted backlog.
    listen_fd_.reset();
    {
        util::MutexLock lock(mu_);
        draining_ = true;
    }
    cv_.notify_all();
}

void
Server::shed(util::Fd fd)
{
    service_.metrics().recordShed();
    HttpResponse res = errorResponse(
        makeError(ErrorCode::ServeOverloaded,
                  "accept queue full; retry after the backlog drains"));
    service_.metrics().recordRequest(Endpoint::Other, res.status, 0.0);
    // Best-effort, short deadline: a shed peer gets one small write.
    // srccheck:allow(S007): the 503 reply is advisory; a peer that
    // cannot take it gets the same outcome (a dropped connection).
    (void)util::sendAll(fd.get(), serializeResponse(res), 100);
}

void
Server::handlerLoop()
{
    while (true) {
        util::Fd conn;
        bool draining = false;
        {
            util::MutexLock lock(mu_);
            cv_.wait(mu_, [this]() REQUIRES(mu_) {
                return !queue_.empty() || draining_;
            });
            if (queue_.empty())
                return; // draining and nothing left
            conn = std::move(queue_.front());
            queue_.pop_front();
            draining = draining_;
        }
        handleConnection(std::move(conn), draining);
    }
}

void
Server::handleConnection(util::Fd fd, bool draining)
{
    service_.metrics().incInflight();
    auto start = std::chrono::steady_clock::now();

    // During a drain the backlog must clear in bounded time: cap the
    // read deadlines so a stalled peer cannot hold shutdown hostage.
    HttpLimits limits = options_.limits;
    if (draining) {
        if (limits.read_deadline_ms > options_.drain_deadline_ms)
            limits.read_deadline_ms = options_.drain_deadline_ms;
        if (limits.head_read_deadline_ms > options_.drain_deadline_ms)
            limits.head_read_deadline_ms = options_.drain_deadline_ms;
    }

    HttpResponse res;
    Endpoint endpoint = Endpoint::Other;
    auto request = readRequest(fd.get(), limits);
    if (!request.ok()) {
        ErrorCode code = request.error().code();
        if (code == ErrorCode::HttpDeadline)
            service_.metrics().recordAbort(AbortCause::ReadTimeout);
        else if (code == ErrorCode::ServeConnection)
            service_.metrics().recordAbort(AbortCause::ReadError);
        res = errorResponse(request.error());
    } else {
        endpoint = classifyEndpoint(request.value().target);
        res = service_.handle(request.value());
    }

    std::string wire = serializeResponse(res);
    // Record before the bytes go out, so a client holding the
    // response is guaranteed to see it counted on a follow-up
    // /metrics scrape; the latency histogram covers read + handle +
    // serialize, not transmission. A peer that vanishes mid-write is
    // its own problem — the failed write is recorded as an abort.
    double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    service_.metrics().recordRequest(endpoint, res.status, seconds);
    if (auto sent =
            util::sendAll(fd.get(), wire, limits.read_deadline_ms);
        !sent.ok())
        service_.metrics().recordAbort(AbortCause::WriteError);
    fd.reset();
    service_.metrics().decInflight();
}

} // namespace accelwall::serve
