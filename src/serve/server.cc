#include "serve/server.hh"

#include <atomic>
#include <chrono>
#include <csignal>

#include "util/logging.hh"

namespace accelwall::serve
{

namespace
{

/**
 * The wake-pipe write target for the process's signal handlers. A
 * lock-free slot because signal handlers may only touch
 * async-signal-safe state.
 */
std::atomic<const util::WakePipe *> g_signal_pipe{nullptr};

extern "C" void
stopSignalHandler(int)
{
    const util::WakePipe *pipe =
        g_signal_pipe.load(std::memory_order_acquire);
    if (pipe)
        pipe->poke(); // one async-signal-safe write(2)
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(options_.service)
{
    if (options_.workers < 1)
        options_.workers = 1;
}

Server::~Server()
{
    if (started_ && !joined_)
        stop();
    if (g_signal_pipe.load(std::memory_order_acquire) == &wake_)
        g_signal_pipe.store(nullptr, std::memory_order_release);
}

Result<void>
Server::start()
{
    if (started_)
        panic("Server::start() called twice");
    auto listener = util::tcpListen(options_.host, options_.port);
    if (!listener.ok())
        return listener.error();
    listen_fd_ = std::move(listener.value().fd);
    port_ = listener.value().port;

    started_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
    handlers_.reserve(static_cast<std::size_t>(options_.workers));
    for (int i = 0; i < options_.workers; ++i)
        handlers_.emplace_back([this] { handlerLoop(); });
    return {};
}

void
Server::requestStop()
{
    wake_.poke();
}

void
Server::installSignalHandlers()
{
    g_signal_pipe.store(&wake_, std::memory_order_release);
    struct sigaction sa{};
    sa.sa_handler = stopSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // interrupt blocking calls so the drain is prompt
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

void
Server::waitUntilStopped()
{
    if (!started_ || joined_)
        return;
    if (acceptor_.joinable())
        acceptor_.join();
    for (std::thread &t : handlers_) {
        if (t.joinable())
            t.join();
    }
    joined_ = true;
}

void
Server::stop()
{
    requestStop();
    waitUntilStopped();
}

void
Server::acceptLoop()
{
    while (true) {
        auto woke = util::pollReadable(listen_fd_.get(), wake_.readFd(),
                                       -1);
        if (!woke.ok())
            continue; // EINTR; the self-pipe carries the real signal
        if (woke.value() == wake_.readFd()) {
            wake_.drain();
            break;
        }
        auto conn = util::tcpAccept(listen_fd_.get());
        if (!conn.ok()) {
            if (conn.error().code() == ErrorCode::ServeConnection)
                continue; // transient (ECONNABORTED / EINTR)
            break;        // listener gone: treat as a stop request
        }
        bool accepted = false;
        {
            util::MutexLock lock(mu_);
            if (queue_.size() < options_.accept_queue) {
                queue_.push_back(std::move(conn.value()));
                accepted = true;
            }
        }
        if (accepted) {
            cv_.notify_one();
        } else {
            shed(std::move(conn.value()));
        }
    }

    // Drain: stop listening so new connections are refused by the OS,
    // then let the handlers finish the accepted backlog.
    listen_fd_.reset();
    {
        util::MutexLock lock(mu_);
        draining_ = true;
    }
    cv_.notify_all();
}

void
Server::shed(util::Fd fd)
{
    service_.metrics().recordShed();
    HttpResponse res = errorResponse(
        makeError(ErrorCode::ServeOverloaded,
                  "accept queue full; retry after the backlog drains"));
    // Best-effort, short deadline: a shed peer gets one small write.
    // srccheck:allow(S007): the 503 reply is advisory; a peer that
    // cannot take it gets the same outcome (a dropped connection).
    (void)util::sendAll(fd.get(), serializeResponse(res), 100);
    service_.metrics().recordRequest(Endpoint::Other, res.status, 0.0);
}

void
Server::handlerLoop()
{
    while (true) {
        util::Fd conn;
        {
            util::MutexLock lock(mu_);
            cv_.wait(mu_, [this]() REQUIRES(mu_) {
                return !queue_.empty() || draining_;
            });
            if (queue_.empty())
                return; // draining and nothing left
            conn = std::move(queue_.front());
            queue_.pop_front();
        }
        handleConnection(std::move(conn));
    }
}

void
Server::handleConnection(util::Fd fd)
{
    service_.metrics().incInflight();
    auto start = std::chrono::steady_clock::now();

    HttpResponse res;
    Endpoint endpoint = Endpoint::Other;
    auto request = readRequest(fd.get(), options_.limits);
    if (!request.ok()) {
        res = errorResponse(request.error());
    } else {
        endpoint = classifyEndpoint(request.value().target);
        res = service_.handle(request.value());
    }

    std::string wire = serializeResponse(res);
    // A peer that vanished mid-write is its own problem; the request
    // is still recorded below. srccheck:allow(S007): nothing to do
    // with the write error — the connection closes either way.
    (void)util::sendAll(fd.get(), wire, options_.limits.read_deadline_ms);
    fd.reset();

    double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    service_.metrics().recordRequest(endpoint, res.status, seconds);
    service_.metrics().decInflight();
}

} // namespace accelwall::serve
