#include "serve/service.hh"

#include <cmath>

#include "aladdin/design_point.hh"
#include "aladdin/simulator.hh"
#include "aladdin/sweep.hh"
#include "chiplet/sweep.hh"
#include "csr/csr.hh"
#include "kernels/kernels.hh"
#include "util/json.hh"

namespace accelwall::serve
{

int
httpStatusFor(ErrorCode code)
{
    switch (code) {
      // Every serve-domain (5xxx) code appears explicitly here: the
      // status is part of the wire contract, and lint rule S002
      // rejects a new serve code that silently rides the default.
      case ErrorCode::HttpMalformed: return 400;
      case ErrorCode::HttpUnsupportedMethod: return 405;
      case ErrorCode::HttpBodyTooLarge:
      case ErrorCode::ServeSweepTooLarge:
      case ErrorCode::ServeChipletTooLarge: return 413;
      case ErrorCode::HttpDeadline: return 408;
      case ErrorCode::ServeOverloaded: return 503;
      case ErrorCode::ServeUnknownEndpoint: return 404;
      case ErrorCode::FaultInjected:
      case ErrorCode::ServeBind:
      case ErrorCode::ServeConnection:
      case ErrorCode::Internal: return 500;
      // Client-side (52xx) codes never ride the wire as a response,
      // but keep the contract total: surfaced through a gateway they
      // all mean "upstream unavailable right now, try again later".
      case ErrorCode::ClientRetriesExhausted:
      case ErrorCode::ClientCircuitOpen:
      case ErrorCode::ClientDeadline: return 503;
      default:
        // Every parse/validation/fit/sweep-input code is the
        // client's input being wrong.
        return 400;
    }
}

std::string
errorBody(const Error &error)
{
    JsonWriter w;
    w.beginObject();
    w.key("error").beginObject();
    w.key("code").value(errorCodeName(error.code()));
    w.key("label").value(errorCodeLabel(error.code()));
    w.key("message").value(error.message());
    if (!error.context().empty())
        w.key("context").value(error.context());
    if (error.line() != 0) {
        w.key("line").value(static_cast<unsigned long long>(error.line()));
        w.key("column").value(
            static_cast<unsigned long long>(error.column()));
    }
    w.endObject();
    w.endObject();
    return w.str();
}

HttpResponse
errorResponse(const Error &error)
{
    HttpResponse res;
    res.status = httpStatusFor(error.code());
    res.body = errorBody(error);
    if (res.status == 503)
        res.headers["Retry-After"] = "1";
    return res;
}

namespace
{

/** The registry names /v1/sweep accepts (kernels + extensions). */
bool
knownKernel(const std::string &name)
{
    for (const kernels::KernelInfo &info : kernels::kernelTable()) {
        if (info.abbrev == name)
            return true;
    }
    for (const char *ext : { "BTC", "BTC-AB", "IDCT", "ENT", "DFT" }) {
        if (name == ext)
            return true;
    }
    return false;
}

Result<const JsonValue *>
requireMember(const JsonValue &obj, const char *name,
              JsonValue::Kind kind, const char *kind_name)
{
    const JsonValue *member = obj.find(name);
    if (!member) {
        return makeError(ErrorCode::JsonMissingField,
                         "missing required field \"", name, "\"");
    }
    if (member->kind() != kind) {
        return makeError(ErrorCode::JsonBadType, "field \"", name,
                         "\" must be a ", kind_name, ", got ",
                         member->kindName());
    }
    return member;
}

/** Required finite number member. */
Result<double>
numberMember(const JsonValue &obj, const char *name)
{
    auto member = requireMember(obj, name, JsonValue::Kind::Number,
                                "number");
    if (!member.ok())
        return member.error();
    return member.value()->asNumber();
}

/** Optional finite number member with a default. */
Result<double>
numberMemberOr(const JsonValue &obj, const char *name, double fallback)
{
    const JsonValue *member = obj.find(name);
    if (!member)
        return fallback;
    if (!member->isNumber()) {
        return makeError(ErrorCode::JsonBadType, "field \"", name,
                         "\" must be a number, got ",
                         member->kindName());
    }
    return member->asNumber();
}

Result<double>
positive(Result<double> value, const char *name)
{
    if (!value.ok())
        return value;
    if (!(value.value() > 0.0) || !std::isfinite(value.value())) {
        return makeError(ErrorCode::JsonBadValue, "field \"", name,
                         "\" must be a positive finite number");
    }
    return value;
}

/** Parse a ChipSpec object {node_nm, area_mm2, freq_ghz?, tdp_w?}. */
Result<potential::ChipSpec>
parseSpec(const JsonValue &obj)
{
    auto node = positive(numberMember(obj, "node_nm"), "node_nm");
    if (!node.ok())
        return node.error();
    auto area = positive(numberMember(obj, "area_mm2"), "area_mm2");
    if (!area.ok())
        return area.error();
    auto freq =
        positive(numberMemberOr(obj, "freq_ghz", 1.0), "freq_ghz");
    if (!freq.ok())
        return freq.error();
    auto tdp = positive(
        numberMemberOr(obj, "tdp_w", potential::kUncappedTdp.raw()),
        "tdp_w");
    if (!tdp.ok())
        return tdp.error();

    potential::ChipSpec spec;
    spec.node_nm = units::Nanometers{node.value()};
    spec.area_mm2 = units::SquareMillimeters{area.value()};
    spec.freq_ghz = units::Gigahertz{freq.value()};
    spec.tdp_w = units::Watts{tdp.value()};
    return spec;
}

void
writeSpec(JsonWriter &w, const potential::ChipSpec &spec)
{
    w.beginObject();
    w.key("node_nm").value(spec.node_nm.raw());
    w.key("area_mm2").value(spec.area_mm2.raw());
    w.key("freq_ghz").value(spec.freq_ghz.raw());
    w.key("tdp_w").value(spec.tdp_w.raw());
    w.endObject();
}

Result<csr::Metric>
parseMetric(const JsonValue &root)
{
    const JsonValue *metric = root.find("metric");
    if (!metric)
        return csr::Metric::Throughput;
    if (!metric->isString()) {
        return makeError(ErrorCode::JsonBadType,
                         "field \"metric\" must be a string, got ",
                         metric->kindName());
    }
    const std::string &name = metric->asString();
    if (name == "throughput")
        return csr::Metric::Throughput;
    if (name == "efficiency")
        return csr::Metric::EnergyEfficiency;
    if (name == "area")
        return csr::Metric::AreaThroughput;
    return makeError(ErrorCode::JsonBadValue, "unknown metric \"", name,
                     "\" (expected throughput|efficiency|area)");
}

/** Numeric array member -> vector<double>, each validated by @p each. */
template <typename Check>
Result<std::vector<double>>
numberArray(const JsonValue &obj, const char *name, Check each)
{
    auto member =
        requireMember(obj, name, JsonValue::Kind::Array, "array");
    if (!member.ok())
        return member.error();
    std::vector<double> out;
    for (const JsonValue &item : member.value()->asArray()) {
        if (!item.isNumber()) {
            return makeError(ErrorCode::JsonBadType, "field \"", name,
                             "\" must contain only numbers, got ",
                             item.kindName());
        }
        double v = item.asNumber();
        if (Result<void> r = each(v); !r.ok())
            return r.error();
        out.push_back(v);
    }
    if (out.empty()) {
        return makeError(ErrorCode::SweepEmptyDimension, "field \"",
                         name, "\" must not be empty");
    }
    return out;
}

} // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_entries, options_.cache_shards)
{
}

HttpResponse
Service::handle(const HttpRequest &request)
{
    const std::string &target = request.target;
    if (target == "/healthz" || target == "/metrics") {
        if (request.method != "GET") {
            return errorResponse(makeError(
                ErrorCode::HttpUnsupportedMethod, request.method,
                " not allowed on ", target, " (use GET)"));
        }
        return target == "/healthz" ? handleHealthz() : handleMetrics();
    }
    if (target == "/v1/gains" || target == "/v1/csr" ||
        target == "/v1/sweep" || target == "/v1/chiplet") {
        if (request.method != "POST") {
            return errorResponse(makeError(
                ErrorCode::HttpUnsupportedMethod, request.method,
                " not allowed on ", target, " (use POST)"));
        }
        if (target == "/v1/gains")
            return handleGains(request);
        if (target == "/v1/csr")
            return handleCsr(request);
        if (target == "/v1/chiplet")
            return handleChiplet(request);
        return handleSweep(request);
    }
    return errorResponse(makeError(ErrorCode::ServeUnknownEndpoint,
                                   "no endpoint at '", target, "'"));
}

HttpResponse
Service::cachedPost(const HttpRequest &request, const char *endpoint,
                    Result<std::string> (Service::*compute)(
                        const std::string &))
{
    if (auto cached = cache_.lookup(endpoint, request.body)) {
        HttpResponse res;
        res.body = std::move(*cached);
        res.headers["X-Cache"] = "hit";
        return res;
    }
    Result<std::string> body = (this->*compute)(request.body);
    if (!body.ok())
        return errorResponse(body.error());
    cache_.insert(endpoint, request.body, body.value());
    HttpResponse res;
    res.body = std::move(body).value();
    res.headers["X-Cache"] = "miss";
    return res;
}

HttpResponse
Service::handleGains(const HttpRequest &request)
{
    return cachedPost(request, "/v1/gains", &Service::computeGains);
}

HttpResponse
Service::handleCsr(const HttpRequest &request)
{
    return cachedPost(request, "/v1/csr", &Service::computeCsr);
}

HttpResponse
Service::handleSweep(const HttpRequest &request)
{
    return cachedPost(request, "/v1/sweep", &Service::computeSweep);
}

HttpResponse
Service::handleChiplet(const HttpRequest &request)
{
    return cachedPost(request, "/v1/chiplet", &Service::computeChiplet);
}

Result<std::string>
Service::computeGains(const std::string &body)
{
    auto parsed = parseJson(body);
    if (!parsed.ok())
        return parsed.error();
    const JsonValue &root = parsed.value();
    if (!root.isObject()) {
        return makeError(ErrorCode::JsonBadType,
                         "request must be a JSON object, got ",
                         root.kindName());
    }

    auto spec_member =
        requireMember(root, "spec", JsonValue::Kind::Object, "object");
    if (!spec_member.ok())
        return spec_member.error();
    auto spec = parseSpec(*spec_member.value());
    if (!spec.ok())
        return spec.error();

    // Default reference: the paper's 25mm2 45nm 1GHz chip with the
    // same envelope policy as the spec (uncapped unless given).
    potential::ChipSpec ref;
    if (const JsonValue *ref_member = root.find("ref")) {
        if (!ref_member->isObject()) {
            return makeError(ErrorCode::JsonBadType,
                             "field \"ref\" must be an object, got ",
                             ref_member->kindName());
        }
        auto parsed_ref = parseSpec(*ref_member);
        if (!parsed_ref.ok())
            return parsed_ref.error();
        ref = parsed_ref.value();
    }

    const potential::ChipSpec &s = spec.value();
    JsonWriter w;
    w.beginObject();
    w.key("spec");
    writeSpec(w, s);
    w.key("ref");
    writeSpec(w, ref);
    w.key("potential").beginObject();
    w.key("area_transistors").value(model_.areaTransistors(s).raw());
    w.key("tdp_transistors").value(model_.tdpTransistors(s).raw());
    w.key("active_transistors")
        .value(model_.activeTransistors(s).raw());
    w.key("throughput_tghz").value(model_.throughput(s).raw());
    w.key("power_w").value(model_.power(s).raw());
    w.key("efficiency_tghz_per_w")
        .value(model_.energyEfficiency(s).raw());
    w.endObject();
    w.key("gains").beginObject();
    w.key("throughput").value(model_.throughputGain(s, ref));
    w.key("efficiency").value(model_.efficiencyGain(s, ref));
    w.key("area_throughput").value(model_.areaThroughputGain(s, ref));
    w.endObject();
    w.endObject();
    return w.str();
}

Result<std::string>
Service::computeCsr(const std::string &body)
{
    auto parsed = parseJson(body);
    if (!parsed.ok())
        return parsed.error();
    const JsonValue &root = parsed.value();
    if (!root.isObject()) {
        return makeError(ErrorCode::JsonBadType,
                         "request must be a JSON object, got ",
                         root.kindName());
    }

    auto metric = parseMetric(root);
    if (!metric.ok())
        return metric.error();

    auto chips_member =
        requireMember(root, "chips", JsonValue::Kind::Array, "array");
    if (!chips_member.ok())
        return chips_member.error();
    const auto &chip_values = chips_member.value()->asArray();
    if (chip_values.size() < 2) {
        return makeError(ErrorCode::JsonBadValue,
                         "need at least two chips, got ",
                         chip_values.size());
    }
    if (chip_values.size() > options_.max_csr_chips) {
        return makeError(ErrorCode::JsonBadValue, "chip series of ",
                         chip_values.size(), " exceeds the ",
                         options_.max_csr_chips, "-chip limit");
    }

    std::vector<csr::ChipGain> chips;
    chips.reserve(chip_values.size());
    for (std::size_t i = 0; i < chip_values.size(); ++i) {
        const JsonValue &cv = chip_values[i];
        if (!cv.isObject()) {
            return makeError(ErrorCode::JsonBadType, "chips[", i,
                             "] must be an object, got ", cv.kindName());
        }
        csr::ChipGain chip;
        if (const JsonValue *name = cv.find("name")) {
            if (!name->isString()) {
                return makeError(ErrorCode::JsonBadType, "chips[", i,
                                 "].name must be a string");
            }
            chip.name = name->asString();
        } else {
            chip.name = "chip" + std::to_string(i);
        }
        auto spec = parseSpec(cv);
        if (!spec.ok()) {
            Error err = spec.error();
            return Error(err.code(),
                         "chips[" + std::to_string(i) +
                             "]: " + err.message());
        }
        chip.spec = spec.value();
        auto gain = positive(numberMember(cv, "gain"), "gain");
        if (!gain.ok()) {
            Error err = gain.error();
            return Error(err.code(),
                         "chips[" + std::to_string(i) +
                             "]: " + err.message());
        }
        chip.gain = gain.value();
        auto year = numberMemberOr(cv, "year", 0.0);
        if (!year.ok())
            return year.error();
        chip.year = year.value();
        chips.push_back(std::move(chip));
    }

    std::size_t baseline = 0;
    if (const JsonValue *b = root.find("baseline")) {
        if (!b->isNumber() || b->asNumber() != std::floor(b->asNumber()) ||
            b->asNumber() < 0) {
            return makeError(ErrorCode::JsonBadValue,
                             "field \"baseline\" must be a non-negative "
                             "integer");
        }
        baseline = static_cast<std::size_t>(b->asNumber());
        if (baseline >= chips.size()) {
            return makeError(ErrorCode::JsonBadValue, "baseline index ",
                             baseline, " out of range for ",
                             chips.size(), " chips");
        }
    }

    auto series =
        csr::csrSeries(chips, model_, metric.value(), baseline);

    JsonWriter w;
    w.beginObject();
    w.key("metric").value(csr::metricName(metric.value()));
    w.key("baseline").value(
        static_cast<unsigned long long>(baseline));
    w.key("points").beginArray();
    for (const csr::CsrPoint &pt : series) {
        w.beginObject();
        w.key("name").value(pt.name);
        w.key("year").value(pt.year);
        w.key("rel_gain").value(pt.rel_gain);
        w.key("rel_phy").value(pt.rel_phy);
        w.key("csr").value(pt.csr);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

Result<std::string>
Service::computeSweep(const std::string &body)
{
    auto parsed = parseJson(body);
    if (!parsed.ok())
        return parsed.error();
    const JsonValue &root = parsed.value();
    if (!root.isObject()) {
        return makeError(ErrorCode::JsonBadType,
                         "request must be a JSON object, got ",
                         root.kindName());
    }

    auto kernel_member =
        requireMember(root, "kernel", JsonValue::Kind::String, "string");
    if (!kernel_member.ok())
        return kernel_member.error();
    const std::string &kernel = kernel_member.value()->asString();
    if (!knownKernel(kernel)) {
        return makeError(ErrorCode::JsonBadValue, "unknown kernel \"",
                         kernel, "\"");
    }

    auto nodes = numberArray(root, "nodes", [](double v) -> Result<void> {
        if (!(v > 0.0) || !std::isfinite(v)) {
            return makeError(ErrorCode::JsonBadValue,
                             "nodes must be positive");
        }
        return {};
    });
    if (!nodes.ok())
        return nodes.error();

    auto partitions = numberArray(
        root, "partitions", [](double v) -> Result<void> {
            if (v != std::floor(v) || v < 1 || v > (1 << 20)) {
                return makeError(ErrorCode::JsonBadValue,
                                 "partitions must be integers in "
                                 "[1, 1048576]");
            }
            return {};
        });
    if (!partitions.ok())
        return partitions.error();

    auto simplifications = numberArray(
        root, "simplifications", [](double v) -> Result<void> {
            if (v != std::floor(v) || v < 1 || v > 13) {
                return makeError(ErrorCode::JsonBadValue,
                                 "simplifications must be integers in "
                                 "[1, 13]");
            }
            return {};
        });
    if (!simplifications.ok())
        return simplifications.error();

    std::size_t cells = nodes.value().size() *
                        partitions.value().size() *
                        simplifications.value().size();
    if (cells > options_.max_sweep_cells) {
        return makeError(ErrorCode::ServeSweepTooLarge, "grid of ",
                         cells, " cells exceeds the ",
                         options_.max_sweep_cells,
                         "-cell per-request limit");
    }

    aladdin::SweepConfig cfg;
    cfg.nodes = nodes.value();
    for (double p : partitions.value())
        cfg.partitions.push_back(static_cast<int>(p));
    for (double s : simplifications.value())
        cfg.simplifications.push_back(static_cast<int>(s));

    if (const JsonValue *chaining = root.find("chaining")) {
        if (!chaining->isBool()) {
            return makeError(ErrorCode::JsonBadType,
                             "field \"chaining\" must be a bool, got ",
                             chaining->kindName());
        }
        cfg.chaining = chaining->asBool();
    }
    auto clock =
        positive(numberMemberOr(root, "clock_ghz", 1.0), "clock_ghz");
    if (!clock.ok())
        return clock.error();
    cfg.clock_ghz = clock.value();

    aladdin::Simulator sim(kernels::makeKernel(kernel));
    aladdin::SweepOptions sweep_opts;
    sweep_opts.on_error = aladdin::OnError::Skip;
    sweep_opts.jobs = options_.sweep_jobs;
    auto outcome = aladdin::runSweepChecked(sim, cfg, sweep_opts);
    if (!outcome.ok())
        return outcome.error();

    JsonWriter w;
    w.beginObject();
    w.key("kernel").value(kernel);
    w.key("cells").beginArray();
    for (const aladdin::SweepPoint &pt : outcome.value().points) {
        w.beginObject();
        w.key("node_nm").value(pt.dp.node_nm);
        w.key("partition").value(pt.dp.partition);
        w.key("simplification").value(pt.dp.simplification);
        w.key("ok").value(pt.ok);
        if (pt.ok) {
            w.key("cycles").value(
                static_cast<unsigned long long>(pt.res.cycles));
            w.key("runtime_ns").value(pt.res.runtime_ns);
            w.key("energy_pj").value(pt.res.energy_pj);
            w.key("power_mw").value(pt.res.power_mw);
            w.key("area_um2").value(pt.res.area_um2);
            w.key("throughput_ops").value(pt.res.throughput_ops);
            w.key("efficiency_opj").value(pt.res.efficiency_opj);
        } else {
            w.key("error_code").value(errorCodeName(pt.error_code));
            w.key("error").value(pt.error);
        }
        w.endObject();
    }
    w.endArray();
    const aladdin::SweepReport &report = outcome.value().report;
    w.key("report").beginObject();
    w.key("chains").value(
        static_cast<unsigned long long>(report.chains));
    w.key("evaluated").value(
        static_cast<unsigned long long>(report.evaluated));
    w.key("failed").value(
        static_cast<unsigned long long>(report.failed));
    w.endObject();
    w.endObject();
    return w.str();
}

Result<std::string>
Service::computeChiplet(const std::string &body)
{
    auto parsed = parseJson(body);
    if (!parsed.ok())
        return parsed.error();
    const JsonValue &root = parsed.value();
    if (!root.isObject()) {
        return makeError(ErrorCode::JsonBadType,
                         "request must be a JSON object, got ",
                         root.kindName());
    }

    auto spec_member =
        requireMember(root, "spec", JsonValue::Kind::Object, "object");
    if (!spec_member.ok())
        return spec_member.error();
    auto spec = parseSpec(*spec_member.value());
    if (!spec.ok())
        return spec.error();

    auto chiplets = numberArray(
        root, "chiplets", [](double v) -> Result<void> {
            if (v != std::floor(v) || v < 1 || v > 1024) {
                return makeError(ErrorCode::JsonBadValue,
                                 "chiplets must be integers in "
                                 "[1, 1024]");
            }
            return {};
        });
    if (!chiplets.ok())
        return chiplets.error();

    auto nodes = numberArray(root, "nodes", [](double v) -> Result<void> {
        if (!(v > 0.0) || !std::isfinite(v)) {
            return makeError(ErrorCode::JsonBadValue,
                             "nodes must be positive");
        }
        return {};
    });
    if (!nodes.ok())
        return nodes.error();

    std::size_t cells = chiplets.value().size() * nodes.value().size();
    if (cells > options_.max_chiplet_cells) {
        return makeError(ErrorCode::ServeChipletTooLarge, "grid of ",
                         cells, " cells exceeds the ",
                         options_.max_chiplet_cells,
                         "-cell per-request limit");
    }

    chiplet::SweepConfig cfg;
    cfg.base = spec.value();
    for (double k : chiplets.value())
        cfg.chiplets.push_back(static_cast<int>(k));
    for (double n : nodes.value())
        cfg.nodes.push_back(units::Nanometers{n});
    cfg.jobs = options_.sweep_jobs;

    auto link_pj = positive(
        numberMemberOr(root, "link_pj_per_bit",
                       cfg.link.pj_per_bit.raw()),
        "link_pj_per_bit");
    if (!link_pj.ok())
        return link_pj.error();
    cfg.link.pj_per_bit = units::Picojoules{link_pj.value()};
    auto ns_hop = positive(
        numberMemberOr(root, "ns_per_hop", cfg.link.ns_per_hop.raw()),
        "ns_per_hop");
    if (!ns_hop.ok())
        return ns_hop.error();
    cfg.link.ns_per_hop = units::Nanoseconds{ns_hop.value()};

    auto outcome =
        chiplet::runSweep(model_, chiplet::shippedCostTable(), cfg);
    if (!outcome.ok())
        return outcome.error();
    const chiplet::SweepResult &sweep = outcome.value();

    auto writePartition = [](JsonWriter &w,
                             const chiplet::PartitionResult &r) {
        w.key("die_area_mm2").value(r.die_area.raw());
        w.key("throughput_tghz").value(r.throughput.raw());
        w.key("power_w").value(r.power.raw());
        w.key("link_power_w").value(r.link_power.raw());
        w.key("latency_penalty").value(r.latency_penalty);
        w.key("cost_usd").value(r.cost.raw());
        w.key("throughput_per_usd").value(r.throughput_per_usd.raw());
    };

    JsonWriter w;
    w.beginObject();
    w.key("spec");
    writeSpec(w, cfg.base);
    w.key("baseline").beginObject();
    writePartition(w, sweep.baseline);
    w.endObject();
    w.key("points").beginArray();
    for (const chiplet::SweepPoint &pt : sweep.points) {
        w.beginObject();
        w.key("chiplets").value(static_cast<long long>(pt.chiplets));
        w.key("node_nm").value(pt.node_nm.raw());
        w.key("ok").value(pt.ok);
        if (pt.ok) {
            writePartition(w, pt.result);
            w.key("gain_per_usd").value(pt.gain_per_usd);
        } else {
            w.key("error_code").value(errorCodeName(pt.error));
            w.key("error").value(errorCodeLabel(pt.error));
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

HttpResponse
Service::handleHealthz() const
{
    JsonWriter w;
    w.beginObject();
    w.key("status").value("ok");
    w.key("version").value(options_.version);
    w.key("inflight").value(
        static_cast<long long>(metrics_.inflight()));
    w.endObject();
    HttpResponse res;
    res.body = w.str();
    return res;
}

HttpResponse
Service::handleMetrics() const
{
    HttpResponse res;
    res.content_type = "text/plain; version=0.0.4";
    res.body = metrics_.renderPrometheus(cache_.stats());
    return res;
}

} // namespace accelwall::serve
