#include "serve/cache.hh"

namespace accelwall::serve
{

std::uint64_t
fnv1a64(const std::string &data, std::uint64_t seed)
{
    std::uint64_t hash = seed;
    for (char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::uint64_t
fnv1a64(const std::string &data)
{
    return fnv1a64(data, 14695981039346656037ULL);
}

double
CacheStats::hitRatio() const
{
    std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
}

ResultCache::ResultCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity)
{
    if (shards < 1)
        shards = 1;
    if (shards > 64)
        shards = 64;
    // Don't spread a tiny budget so thin that shards round to zero.
    if (shards > capacity && capacity > 0)
        shards = capacity;
    per_shard_ = capacity_ == 0 ? 0 : (capacity_ + shards - 1) / shards;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

std::uint64_t
ResultCache::keyOf(const std::string &endpoint, const std::string &request)
{
    return fnv1a64(request, fnv1a64(endpoint + "\n"));
}

ResultCache::Shard &
ResultCache::shardFor(std::uint64_t key)
{
    // The multiplier mixes low bits into the top; take the high bits
    // so shard choice and index bucket choice stay decorrelated.
    return *shards_[(key >> 56) % shards_.size()];
}

const ResultCache::Shard &
ResultCache::shardFor(std::uint64_t key) const
{
    return *shards_[(key >> 56) % shards_.size()];
}

std::optional<std::string>
ResultCache::lookup(const std::string &endpoint, const std::string &request)
{
    if (capacity_ == 0)
        return std::nullopt;
    std::uint64_t key = keyOf(endpoint, request);
    std::string full = endpoint + "\n" + request;
    Shard &shard = shardFor(key);
    util::MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end() || it->second->request != full) {
        ++shard.misses;
        return std::nullopt;
    }
    // Refresh: move to MRU position.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    return it->second->response;
}

void
ResultCache::insert(const std::string &endpoint, const std::string &request,
                    std::string response)
{
    if (capacity_ == 0)
        return;
    std::uint64_t key = keyOf(endpoint, request);
    std::string full = endpoint + "\n" + request;
    Shard &shard = shardFor(key);
    util::MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        // Refresh in place (also heals a hash-collision slot by
        // overwriting it with the newer request).
        it->second->request = std::move(full);
        it->second->response = std::move(response);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.push_front(
        Entry{key, std::move(full), std::move(response)});
    shard.index[key] = shard.lru.begin();
    ++shard.insertions;
    while (shard.lru.size() > per_shard_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++shard.evictions;
    }
}

CacheStats
ResultCache::stats() const
{
    CacheStats total;
    for (const auto &shard : shards_) {
        util::MutexLock lock(shard->mu);
        total.hits += shard->hits;
        total.misses += shard->misses;
        total.insertions += shard->insertions;
        total.evictions += shard->evictions;
        total.entries += shard->lru.size();
    }
    return total;
}

} // namespace accelwall::serve
