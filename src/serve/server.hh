/**
 * @file
 * The threaded HTTP server wrapping serve::Service.
 *
 * Threading model (DESIGN.md §8): one acceptor thread polls the
 * listener and a self-pipe; accepted connections go into a bounded
 * queue drained by a fixed pool of handler threads. When the queue is
 * full, the acceptor itself answers 503 + Retry-After and closes —
 * admission control sheds load before a request ties up a handler.
 *
 * Graceful drain: requestStop() (async-signal-safe via the self-pipe)
 * stops the acceptor, which closes the listener; handlers finish the
 * queued backlog and exit. waitUntilStopped() joins everything, so a
 * SIGTERM'd daemon answers every accepted request before exiting —
 * the drain death test in test_serve.cc pins this down.
 */

#ifndef ACCELWALL_SERVE_SERVER_HH
#define ACCELWALL_SERVE_SERVER_HH

#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.hh"
#include "serve/service.hh"
#include "util/socket.hh"
#include "util/thread_annotations.hh"

namespace accelwall::serve
{

/** Everything the daemon can configure. */
struct ServerOptions
{
    std::string host = "127.0.0.1";
    /** 0 requests an ephemeral port (reported by Server::port()). */
    int port = 0;
    /** Handler threads. */
    int workers = 4;
    /**
     * Bounded accept-queue capacity. Connections accepted while the
     * queue is full are shed with 503 + Retry-After. 0 sheds
     * everything (useful to test the admission path).
     */
    std::size_t accept_queue = 64;
    HttpLimits limits;
    /**
     * Read-deadline cap applied to connections handled *during a
     * drain*: the graceful-shutdown promise is "answer everything
     * already accepted", and a slow-loris peer in the backlog must
     * not be able to stretch that into an unbounded shutdown.
     */
    int drain_deadline_ms = 250;
    ServiceOptions service;
};

class Server
{
  public:
    explicit Server(ServerOptions options = {});

    /** Joins (via stop) if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and spawn the acceptor + handler threads. */
    Result<void> start();

    /** The bound port (valid after start()). */
    int port() const { return port_; }

    /**
     * Begin a graceful drain. Async-signal-safe (one pipe write); may
     * be called any number of times from any thread or handler.
     */
    void requestStop();

    /** Block until the drain finishes and every thread is joined. */
    void waitUntilStopped();

    /** requestStop() + waitUntilStopped(). */
    void stop();

    Service &service() { return service_; }

    /**
     * Install SIGINT/SIGTERM handlers that requestStop() this server.
     * One server per process may own the signals at a time.
     */
    void installSignalHandlers();

  private:
    void acceptLoop();
    void handlerLoop();
    void handleConnection(util::Fd fd, bool draining);
    /** Answer 503 + Retry-After straight from the acceptor. */
    void shed(util::Fd fd);

    ServerOptions options_;
    Service service_;
    util::Fd listen_fd_;
    int port_ = 0;
    util::WakePipe wake_;

    util::Mutex mu_;
    util::ConditionVariable cv_;
    std::deque<util::Fd> queue_ GUARDED_BY(mu_);
    bool draining_ GUARDED_BY(mu_) = false;

    std::thread acceptor_;
    std::vector<std::thread> handlers_;
    bool started_ = false;
    bool joined_ = false;
};

} // namespace accelwall::serve

#endif // ACCELWALL_SERVE_SERVER_HH
