/**
 * @file
 * Minimal HTTP/1.1 framing for the query service.
 *
 * Deliberately small: request line + headers + Content-Length body,
 * one request per connection (Connection: close — keep-alive reuse is
 * a ROADMAP item). Chunked transfer encoding, continuation lines, and
 * HTTP/2 are rejected with stable error codes rather than half
 * supported. Parsing is exposed on plain strings so the fuzz-ish test
 * corpus can drive it without sockets.
 */

#ifndef ACCELWALL_SERVE_HTTP_HH
#define ACCELWALL_SERVE_HTTP_HH

#include <cstddef>
#include <map>
#include <string>

#include "util/error.hh"

namespace accelwall::serve
{

/** Framing limits and the per-request read deadlines. */
struct HttpLimits
{
    /** Cap on the request head (request line + headers). */
    std::size_t max_head_bytes = 16 * 1024;
    /** Cap on the declared/received body. */
    std::size_t max_body_bytes = 1024 * 1024;
    /** Total wall-clock budget for reading one request, ms. */
    int read_deadline_ms = 2000;
    /**
     * Tighter budget for the head alone (slow-loris defense: a peer
     * dripping header bytes is cut off well before the full request
     * budget). Values above read_deadline_ms are clamped to it.
     */
    int head_read_deadline_ms = 1000;
};

/** One parsed request. */
struct HttpRequest
{
    std::string method;  // "GET", "POST"
    std::string target;  // "/v1/gains" (query strings not split)
    std::string version; // "HTTP/1.1"
    /** Header names lowercased; last occurrence wins. */
    std::map<std::string, std::string> headers;
    std::string body;

    /** Lowercase-name header lookup; "" when absent. */
    const std::string &header(const std::string &name) const;
};

/** One response about to be serialized. */
struct HttpResponse
{
    int status = 200;
    std::string content_type = "application/json";
    /** Extra headers (name: value), e.g. Retry-After. */
    std::map<std::string, std::string> headers;
    std::string body;
};

/** Canonical reason phrase for the status codes the service emits. */
const char *statusReason(int status);

/**
 * Parse a complete request head (everything before the blank line,
 * which must be included in @p head as the trailing "\r\n\r\n" — or
 * be absent, in which case the head is truncated and rejected).
 * The body is NOT consumed here; contentLength() reports how much to
 * read next.
 */
Result<HttpRequest> parseRequestHead(const std::string &head,
                                     const HttpLimits &limits = {});

/**
 * The validated Content-Length of a parsed request: 0 when absent,
 * E5001 http-malformed when non-numeric or negative, E5003
 * http-body-too-large when over the limit. Transfer-Encoding of any
 * kind is E5001 (not supported).
 */
Result<std::size_t> contentLength(const HttpRequest &request,
                                  const HttpLimits &limits);

/**
 * Read one full request (head + body) from a connected socket,
 * enforcing all limits and the read deadline.
 */
Result<HttpRequest> readRequest(int fd, const HttpLimits &limits);

/** Serialize with Content-Length and Connection: close. */
std::string serializeResponse(const HttpResponse &response);

/**
 * Read one full response from a connected socket (client side):
 * status line, headers, Content-Length body. Returns the parsed
 * response with status and body populated.
 */
Result<HttpResponse> readResponse(int fd, const HttpLimits &limits);

} // namespace accelwall::serve

#endif // ACCELWALL_SERVE_HTTP_HH
