#include "serve/metrics.hh"

#include <sstream>

#include "util/faultinject.hh"
#include "util/json.hh"

namespace accelwall::serve
{

const char *
endpointLabel(Endpoint ep)
{
    switch (ep) {
      case Endpoint::Gains: return "/v1/gains";
      case Endpoint::Csr: return "/v1/csr";
      case Endpoint::Sweep: return "/v1/sweep";
      case Endpoint::Chiplet: return "/v1/chiplet";
      case Endpoint::Healthz: return "/healthz";
      case Endpoint::Metrics: return "/metrics";
      case Endpoint::Other: return "other";
    }
    return "?";
}

Endpoint
classifyEndpoint(const std::string &target)
{
    if (target == "/v1/gains")
        return Endpoint::Gains;
    if (target == "/v1/csr")
        return Endpoint::Csr;
    if (target == "/v1/sweep")
        return Endpoint::Sweep;
    if (target == "/v1/chiplet")
        return Endpoint::Chiplet;
    if (target == "/healthz")
        return Endpoint::Healthz;
    if (target == "/metrics")
        return Endpoint::Metrics;
    return Endpoint::Other;
}

const char *
statusClassLabel(StatusClass sc)
{
    switch (sc) {
      case StatusClass::Ok2xx: return "2xx";
      case StatusClass::ClientError4xx: return "4xx";
      case StatusClass::ServerError5xx: return "5xx";
    }
    return "?";
}

const char *
abortCauseLabel(AbortCause cause)
{
    switch (cause) {
      case AbortCause::AcceptFault: return "accept-fault";
      case AbortCause::ReadTimeout: return "read-timeout";
      case AbortCause::ReadError: return "read-error";
      case AbortCause::WriteError: return "write-error";
    }
    return "?";
}

StatusClass
classifyStatus(int status)
{
    if (status >= 500)
        return StatusClass::ServerError5xx;
    if (status >= 400)
        return StatusClass::ClientError4xx;
    return StatusClass::Ok2xx;
}

namespace
{

std::size_t
cellIndex(Endpoint ep, StatusClass sc)
{
    return static_cast<std::size_t>(ep) *
               static_cast<std::size_t>(kNumStatusClasses) +
           static_cast<std::size_t>(sc);
}

} // namespace

void
Metrics::recordRequest(Endpoint ep, int status, double seconds)
{
    StatusClass sc = classifyStatus(status);
    requests_[cellIndex(ep, sc)].fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < kLatencyBucketsSeconds.size(); ++i) {
        if (seconds <= kLatencyBucketsSeconds[i])
            latency_buckets_[i].fetch_add(1, std::memory_order_relaxed);
    }
    latency_count_.fetch_add(1, std::memory_order_relaxed);
    latency_sum_ns_.fetch_add(
        static_cast<std::uint64_t>(seconds * 1e9),
        std::memory_order_relaxed);
}

void
Metrics::recordShed()
{
    shed_.fetch_add(1, std::memory_order_relaxed);
}

void
Metrics::recordAbort(AbortCause cause)
{
    aborts_[static_cast<std::size_t>(cause)].fetch_add(
        1, std::memory_order_relaxed);
}

void
Metrics::recordRetry()
{
    retries_.fetch_add(1, std::memory_order_relaxed);
}

void
Metrics::setBreakerState(int state)
{
    breaker_state_.store(state, std::memory_order_relaxed);
}

void
Metrics::incInflight()
{
    inflight_.fetch_add(1, std::memory_order_relaxed);
}

void
Metrics::decInflight()
{
    inflight_.fetch_sub(1, std::memory_order_relaxed);
}

std::uint64_t
Metrics::requestCount(Endpoint ep, StatusClass sc) const
{
    return requests_[cellIndex(ep, sc)].load(std::memory_order_relaxed);
}

std::uint64_t
Metrics::totalRequests() const
{
    std::uint64_t total = 0;
    for (const auto &cell : requests_)
        total += cell.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
Metrics::shedCount() const
{
    return shed_.load(std::memory_order_relaxed);
}

std::uint64_t
Metrics::abortCount(AbortCause cause) const
{
    return aborts_[static_cast<std::size_t>(cause)].load(
        std::memory_order_relaxed);
}

std::uint64_t
Metrics::retriesTotal() const
{
    return retries_.load(std::memory_order_relaxed);
}

int
Metrics::breakerState() const
{
    return breaker_state_.load(std::memory_order_relaxed);
}

std::int64_t
Metrics::inflight() const
{
    return inflight_.load(std::memory_order_relaxed);
}

std::string
Metrics::renderPrometheus(const CacheStats &cache) const
{
    std::ostringstream os;

    os << "# HELP accelwall_requests_total Finished HTTP requests.\n"
          "# TYPE accelwall_requests_total counter\n";
    for (int e = 0; e < kNumEndpoints; ++e) {
        for (int s = 0; s < kNumStatusClasses; ++s) {
            auto ep = static_cast<Endpoint>(e);
            auto sc = static_cast<StatusClass>(s);
            os << "accelwall_requests_total{endpoint=\""
               << endpointLabel(ep) << "\",status=\""
               << statusClassLabel(sc) << "\"} "
               << requestCount(ep, sc) << "\n";
        }
    }

    os << "# HELP accelwall_requests_shed_total Connections refused by "
          "admission control.\n"
          "# TYPE accelwall_requests_shed_total counter\n"
          "accelwall_requests_shed_total "
       << shedCount() << "\n";

    os << "# HELP accelwall_request_duration_seconds Request handling "
          "latency.\n"
          "# TYPE accelwall_request_duration_seconds histogram\n";
    for (std::size_t i = 0; i < kLatencyBucketsSeconds.size(); ++i) {
        os << "accelwall_request_duration_seconds_bucket{le=\""
           << fmtJsonNumber(kLatencyBucketsSeconds[i]) << "\"} "
           << latency_buckets_[i].load(std::memory_order_relaxed)
           << "\n";
    }
    std::uint64_t count = latency_count_.load(std::memory_order_relaxed);
    os << "accelwall_request_duration_seconds_bucket{le=\"+Inf\"} "
       << count << "\n"
       << "accelwall_request_duration_seconds_sum "
       << fmtJsonNumber(
              static_cast<double>(
                  latency_sum_ns_.load(std::memory_order_relaxed)) /
              1e9)
       << "\n"
       << "accelwall_request_duration_seconds_count " << count << "\n";

    os << "# HELP accelwall_cache_hits_total Result-cache hits.\n"
          "# TYPE accelwall_cache_hits_total counter\n"
          "accelwall_cache_hits_total "
       << cache.hits << "\n";
    os << "# HELP accelwall_cache_misses_total Result-cache misses.\n"
          "# TYPE accelwall_cache_misses_total counter\n"
          "accelwall_cache_misses_total "
       << cache.misses << "\n";
    os << "# HELP accelwall_cache_insertions_total Result-cache "
          "insertions.\n"
          "# TYPE accelwall_cache_insertions_total counter\n"
          "accelwall_cache_insertions_total "
       << cache.insertions << "\n";
    os << "# HELP accelwall_cache_evictions_total Result-cache LRU "
          "evictions.\n"
          "# TYPE accelwall_cache_evictions_total counter\n"
          "accelwall_cache_evictions_total "
       << cache.evictions << "\n";
    os << "# HELP accelwall_cache_entries Resident cache entries.\n"
          "# TYPE accelwall_cache_entries gauge\n"
          "accelwall_cache_entries "
       << cache.entries << "\n";
    os << "# HELP accelwall_cache_hit_ratio Hits over lookups.\n"
          "# TYPE accelwall_cache_hit_ratio gauge\n"
          "accelwall_cache_hit_ratio "
       << fmtJsonNumber(cache.hitRatio()) << "\n";

    os << "# HELP accelwall_connection_aborts_total Connections "
          "dropped without a complete exchange, by cause.\n"
          "# TYPE accelwall_connection_aborts_total counter\n";
    for (int c = 0; c < kNumAbortCauses; ++c) {
        auto cause = static_cast<AbortCause>(c);
        os << "accelwall_connection_aborts_total{cause=\""
           << abortCauseLabel(cause) << "\"} " << abortCount(cause)
           << "\n";
    }

    os << "# HELP accelwall_retries_total Resilient-client retry "
          "attempts.\n"
          "# TYPE accelwall_retries_total counter\n"
          "accelwall_retries_total "
       << retriesTotal() << "\n";
    os << "# HELP accelwall_breaker_state Client circuit breaker "
          "(0=closed, 1=open, 2=half-open).\n"
          "# TYPE accelwall_breaker_state gauge\n"
          "accelwall_breaker_state "
       << breakerState() << "\n";

    // Process-wide, read straight from the fault plan: the scrape is
    // the ground truth the chaos suite compares reruns against.
    os << "# HELP accelwall_faults_injected_total Faults fired by the "
          "active ACCELWALL_FAULT plan.\n"
          "# TYPE accelwall_faults_injected_total counter\n"
          "accelwall_faults_injected_total "
       << util::FaultPlan::global().totalInjected() << "\n";

    os << "# HELP accelwall_inflight_requests Requests being handled "
          "right now.\n"
          "# TYPE accelwall_inflight_requests gauge\n"
          "accelwall_inflight_requests "
       << inflight() << "\n";

    return os.str();
}

} // namespace accelwall::serve
