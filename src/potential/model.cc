#include "potential/model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace accelwall::potential
{

PotentialModel::PotentialModel()
    : budget_(), calibration_()
{
}

PotentialModel::PotentialModel(chipdb::BudgetModel budget)
    : budget_(std::move(budget)), calibration_()
{
}

PotentialModel::PotentialModel(chipdb::BudgetModel budget,
                               Calibration calibration)
    : budget_(std::move(budget)), calibration_(calibration)
{
    if (calibration_.dyn_w_per_tx_ghz <= 0.0 ||
        calibration_.leak_w_per_tx <= 0.0)
        fatal("PotentialModel: calibration constants must be positive");
}

double
PotentialModel::areaTransistors(const ChipSpec &spec) const
{
    return budget_.areaTransistors(spec.area_mm2, spec.node_nm);
}

double
PotentialModel::tdpTransistors(const ChipSpec &spec) const
{
    if (spec.freq_ghz <= 0.0)
        fatal("PotentialModel: frequency must be positive");
    return budget_.tdpTransistors(spec.tdp_w, spec.node_nm, spec.freq_ghz);
}

double
PotentialModel::activeTransistors(const ChipSpec &spec) const
{
    const auto &scaling = cmos::ScalingTable::instance();

    // Bottom-up thermal cap: all fabricated transistors leak whether or
    // not they switch, so the envelope left for switching is
    // TDP - leakage(all). This is what makes old nodes more appealing
    // for very large dies under a restricted TDP (Section III).
    double leak_all = areaTransistors(spec) *
                      calibration_.leak_w_per_tx *
                      scaling.leakagePower(spec.node_nm);
    double dyn_per_tx = calibration_.dyn_w_per_tx_ghz *
                        scaling.dynamicEnergy(spec.node_nm) *
                        spec.freq_ghz;
    double thermal = std::max(0.0, spec.tdp_w - leak_all) / dyn_per_tx;

    return std::min({areaTransistors(spec), tdpTransistors(spec),
                     thermal});
}

double
PotentialModel::throughput(const ChipSpec &spec) const
{
    return activeTransistors(spec) * spec.freq_ghz;
}

double
PotentialModel::power(const ChipSpec &spec) const
{
    const auto &scaling = cmos::ScalingTable::instance();
    double active = activeTransistors(spec);
    double dynamic = active * calibration_.dyn_w_per_tx_ghz *
                     scaling.dynamicEnergy(spec.node_nm) * spec.freq_ghz;
    // All fabricated transistors leak whether or not they may switch
    // within the envelope; this is the dark-silicon tax.
    double leakage = areaTransistors(spec) *
                     calibration_.leak_w_per_tx *
                     scaling.leakagePower(spec.node_nm);
    return std::min(spec.tdp_w, dynamic + leakage);
}

double
PotentialModel::energyEfficiency(const ChipSpec &spec) const
{
    return throughput(spec) / power(spec);
}

double
PotentialModel::areaThroughput(const ChipSpec &spec) const
{
    return throughput(spec) / spec.area_mm2;
}

double
PotentialModel::throughputGain(const ChipSpec &spec,
                               const ChipSpec &ref) const
{
    return throughput(spec) / throughput(ref);
}

double
PotentialModel::efficiencyGain(const ChipSpec &spec,
                               const ChipSpec &ref) const
{
    return energyEfficiency(spec) / energyEfficiency(ref);
}

double
PotentialModel::areaThroughputGain(const ChipSpec &spec,
                                   const ChipSpec &ref) const
{
    return areaThroughput(spec) / areaThroughput(ref);
}

double
PotentialModel::optimalFrequency(double node_nm, double area_mm2,
                                 double tdp_w) const
{
    double best_freq = 0.05, best_thr = 0.0;
    for (double f = 0.05; f <= 5.0 + 1e-9; f *= 1.05) {
        ChipSpec spec{node_nm, area_mm2, f, tdp_w};
        double thr = throughput(spec);
        if (thr > best_thr) {
            best_thr = thr;
            best_freq = f;
        }
    }
    return best_freq;
}

} // namespace accelwall::potential
