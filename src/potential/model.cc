#include "potential/model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace accelwall::potential
{

using units::Gigahertz;
using units::Nanometers;
using units::SquareMillimeters;
using units::TransistorCount;
using units::TransistorGigahertz;
using units::Watts;
using units::WattsPerTransistor;

PotentialModel::PotentialModel()
    : budget_(), calibration_()
{
}

PotentialModel::PotentialModel(chipdb::BudgetModel budget)
    : budget_(std::move(budget)), calibration_()
{
}

PotentialModel::PotentialModel(chipdb::BudgetModel budget,
                               Calibration calibration)
    : budget_(std::move(budget)), calibration_(calibration)
{
    if (calibration_.dyn_w_per_tx_ghz.raw() <= 0.0 ||
        calibration_.leak_w_per_tx.raw() <= 0.0)
        fatal("PotentialModel: calibration constants must be positive");
}

TransistorCount
PotentialModel::areaTransistors(const ChipSpec &spec) const
{
    return budget_.areaTransistors(spec.area_mm2, spec.node_nm);
}

TransistorCount
PotentialModel::tdpTransistors(const ChipSpec &spec) const
{
    if (spec.freq_ghz <= Gigahertz{0.0})
        fatal("PotentialModel: frequency must be positive");
    return budget_.tdpTransistors(spec.tdp_w, spec.node_nm, spec.freq_ghz);
}

TransistorCount
PotentialModel::activeTransistors(const ChipSpec &spec) const
{
    const auto &scaling = cmos::ScalingTable::instance();

    // Bottom-up thermal cap: all fabricated transistors leak whether or
    // not they switch, so the envelope left for switching is
    // TDP - leakage(all). This is what makes old nodes more appealing
    // for very large dies under a restricted TDP (Section III). Every
    // line below is dimension-checked: counts times W/count gives W,
    // nJ/transistor times GHz gives W/transistor, and the quotient of
    // the two recovers a transistor count.
    Watts leak_all = areaTransistors(spec) * calibration_.leak_w_per_tx *
                     scaling.leakagePower(spec.node_nm);
    WattsPerTransistor dyn_per_tx =
        calibration_.dyn_w_per_tx_ghz *
        scaling.dynamicEnergy(spec.node_nm) * spec.freq_ghz;
    TransistorCount thermal =
        std::max(Watts{0.0}, spec.tdp_w - leak_all) / dyn_per_tx;

    return std::min({areaTransistors(spec), tdpTransistors(spec),
                     thermal});
}

TransistorGigahertz
PotentialModel::throughput(const ChipSpec &spec) const
{
    return activeTransistors(spec) * spec.freq_ghz;
}

Watts
PotentialModel::power(const ChipSpec &spec) const
{
    const auto &scaling = cmos::ScalingTable::instance();
    TransistorCount active = activeTransistors(spec);
    Watts dynamic = active * calibration_.dyn_w_per_tx_ghz *
                    scaling.dynamicEnergy(spec.node_nm) * spec.freq_ghz;
    // All fabricated transistors leak whether or not they may switch
    // within the envelope; this is the dark-silicon tax.
    Watts leakage = areaTransistors(spec) * calibration_.leak_w_per_tx *
                    scaling.leakagePower(spec.node_nm);
    return std::min(spec.tdp_w, dynamic + leakage);
}

units::TransistorGigahertzPerWatt
PotentialModel::energyEfficiency(const ChipSpec &spec) const
{
    return throughput(spec) / power(spec);
}

units::TransistorGigahertzPerSquareMillimeter
PotentialModel::areaThroughput(const ChipSpec &spec) const
{
    return throughput(spec) / spec.area_mm2;
}

double
PotentialModel::throughputGain(const ChipSpec &spec,
                               const ChipSpec &ref) const
{
    return throughput(spec) / throughput(ref);
}

double
PotentialModel::efficiencyGain(const ChipSpec &spec,
                               const ChipSpec &ref) const
{
    return energyEfficiency(spec) / energyEfficiency(ref);
}

double
PotentialModel::areaThroughputGain(const ChipSpec &spec,
                                   const ChipSpec &ref) const
{
    return areaThroughput(spec) / areaThroughput(ref);
}

Gigahertz
PotentialModel::optimalFrequency(Nanometers node, SquareMillimeters area,
                                 Watts tdp) const
{
    Gigahertz best_freq{0.05};
    TransistorGigahertz best_thr{0.0};
    for (double f = 0.05; f <= 5.0 + 1e-9; f *= 1.05) {
        ChipSpec spec{node, area, Gigahertz{f}, tdp};
        TransistorGigahertz thr = throughput(spec);
        if (thr > best_thr) {
            best_thr = thr;
            best_freq = Gigahertz{f};
        }
    }
    return best_freq;
}

} // namespace accelwall::potential
