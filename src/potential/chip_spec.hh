/**
 * @file
 * The four physical inputs of the CMOS potential model (Section III):
 * node, die size, frequency, and TDP.
 */

#ifndef ACCELWALL_POTENTIAL_CHIP_SPEC_HH
#define ACCELWALL_POTENTIAL_CHIP_SPEC_HH

namespace accelwall::potential
{

/**
 * Physical description of a chip, the model's input tuple. "The model
 * receives as input: (i) CMOS node, (ii) die size or transistor count,
 * (iii) chip operation frequency, and (iv) TDP."
 */
struct ChipSpec
{
    /** CMOS feature size in nanometres. */
    double node_nm = 45.0;
    /** Die area in mm². */
    double area_mm2 = 25.0;
    /** Operating frequency in GHz. */
    double freq_ghz = 1.0;
    /**
     * Thermal design power in watts. Use kUncapped when modeling a chip
     * with no meaningful power envelope.
     */
    double tdp_w = 1e9;
};

/** Sentinel: effectively no TDP constraint. */
inline constexpr double kUncappedTdp = 1e9;

} // namespace accelwall::potential

#endif // ACCELWALL_POTENTIAL_CHIP_SPEC_HH
