/**
 * @file
 * The four physical inputs of the CMOS potential model (Section III):
 * node, die size, frequency, and TDP.
 */

#ifndef ACCELWALL_POTENTIAL_CHIP_SPEC_HH
#define ACCELWALL_POTENTIAL_CHIP_SPEC_HH

#include "util/units.hh"

namespace accelwall::potential
{

/** Sentinel: effectively no TDP constraint. */
inline constexpr units::Watts kUncappedTdp{1e9};

/**
 * Physical description of a chip, the model's input tuple. "The model
 * receives as input: (i) CMOS node, (ii) die size or transistor count,
 * (iii) chip operation frequency, and (iv) TDP."
 *
 * The fields are dimensional types (util/units.hh), so transposing
 * them — passing a die area where the node is expected — is a compile
 * error, not a silently absurd model.
 */
struct ChipSpec
{
    /** CMOS feature size. */
    units::Nanometers node_nm{45.0};
    /** Die area. */
    units::SquareMillimeters area_mm2{25.0};
    /** Operating frequency. */
    units::Gigahertz freq_ghz{1.0};
    /**
     * Thermal design power. Use kUncappedTdp when modeling a chip
     * with no meaningful power envelope.
     */
    units::Watts tdp_w = kUncappedTdp;
};

} // namespace accelwall::potential

#endif // ACCELWALL_POTENTIAL_CHIP_SPEC_HH
