/**
 * @file
 * The CMOS potential model (Section III, Figure 3d).
 *
 * An application-independent estimate of the CMOS-driven capabilities of a
 * chip given its physical properties. Combines the device-scaling table
 * (cmos::ScalingTable) with the transistor-budget models
 * (chipdb::BudgetModel):
 *
 *   activeTransistors = min( TC_area(area, node),
 *                            TC_tdp(TDP, node) / freq )
 *   throughput        ~ activeTransistors * freq
 *   power             = min( TDP, dynamic(active) + leakage(all) )
 *   energy efficiency = throughput / power
 *
 * The model reproduces the paper's Figure 3d anchor: an 800mm² 5nm chip
 * at 1GHz is ~1000x a 25mm² 45nm chip unconstrained, dropping ~70% to
 * ~300x under an 800W envelope.
 */

#ifndef ACCELWALL_POTENTIAL_MODEL_HH
#define ACCELWALL_POTENTIAL_MODEL_HH

#include "chipdb/budget.hh"
#include "cmos/scaling.hh"
#include "potential/chip_spec.hh"

namespace accelwall::potential
{

/**
 * Absolute power calibration of the potential model. The defaults pin
 * a 1e9-transistor 45nm chip at 1 GHz to ~100W (80W dynamic + 20W
 * leakage), in line with contemporaneous GPUs; the sensitivity
 * ablation perturbs these to show the CSR conclusions are
 * calibration-robust (ratios cancel most of the absolute scale).
 *
 * Both constants are dimensional: the switching calibration is watts
 * per transistor-GHz — i.e. nanojoules of switching energy per
 * transistor — and the leakage calibration is watts per transistor, so
 * the power arithmetic in model.cc type-checks end to end.
 */
struct Calibration
{
    /** Dynamic power per transistor at 45nm and 1 GHz. */
    units::WattsPerTransistorGigahertz dyn_w_per_tx_ghz{8e-8};
    /** Leakage power per transistor at 45nm. */
    units::WattsPerTransistor leak_w_per_tx{2e-8};
};

/**
 * Application-independent physical chip-gains model.
 *
 * Throughput is reported in transistor-GHz (an arbitrary unit: the model
 * is only ever used through gain *ratios* between two specs, per Eq. 2).
 */
class PotentialModel
{
  public:
    /** Build with the canonical budget fits and scaling table. */
    PotentialModel();

    /** Build with an explicit (e.g. re-fit) budget model. */
    explicit PotentialModel(chipdb::BudgetModel budget);

    /** Build with explicit budget and power calibration. */
    PotentialModel(chipdb::BudgetModel budget, Calibration calibration);

    /** Area-budget transistor count (Fig. 3b law). */
    units::TransistorCount areaTransistors(const ChipSpec &spec) const;

    /** Power-budget active transistor count (Fig. 3c law). */
    units::TransistorCount tdpTransistors(const ChipSpec &spec) const;

    /**
     * Usable transistors: the minimum of the area budget, the empirical
     * power-envelope budget, and the bottom-up thermal budget
     * (TDP minus the leakage of every fabricated transistor, divided by
     * per-transistor switching power). The last term models why, for
     * large dies under a restricted TDP, "the high transistor count and
     * static power of new CMOS nodes make old nodes more appealing".
     */
    units::TransistorCount activeTransistors(const ChipSpec &spec) const;

    /** CMOS-driven throughput potential, in transistor-GHz. */
    units::TransistorGigahertz throughput(const ChipSpec &spec) const;

    /** Modeled dissipation, capped at the spec's TDP. */
    units::Watts power(const ChipSpec &spec) const;

    /** CMOS-driven energy-efficiency potential (throughput per watt). */
    units::TransistorGigahertzPerWatt energyEfficiency(
        const ChipSpec &spec) const;

    /** Throughput potential per mm² of die (area-normalized metrics). */
    units::TransistorGigahertzPerSquareMillimeter areaThroughput(
        const ChipSpec &spec) const;

    /** Ratio of throughput potentials spec/ref (Eq. 2 denominator). */
    double throughputGain(const ChipSpec &spec, const ChipSpec &ref) const;

    /** Ratio of efficiency potentials spec/ref. */
    double efficiencyGain(const ChipSpec &spec, const ChipSpec &ref) const;

    /** Ratio of per-area throughput potentials spec/ref. */
    double areaThroughputGain(const ChipSpec &spec,
                              const ChipSpec &ref) const;

    /**
     * Frequency that maximizes throughput for a given node, die, and
     * envelope. Below the optimum the chip is area-bound (more clock
     * helps); above it the envelope caps transistor-GHz and extra
     * clock only darkens silicon. Searched over a log grid in
     * [0.05, 5] GHz.
     */
    units::Gigahertz optimalFrequency(units::Nanometers node,
                                      units::SquareMillimeters area,
                                      units::Watts tdp) const;

    /** The budget model in use. */
    const chipdb::BudgetModel &budget() const { return budget_; }

    /** The power calibration in use. */
    const Calibration &calibration() const { return calibration_; }

    /** Default dynamic power per transistor at 45nm/1GHz, watts. */
    static constexpr double kDynWattsPerTransistorGhz = 8e-8;

    /** Default leakage power per transistor at 45nm, watts. */
    static constexpr double kLeakWattsPerTransistor = 2e-8;

  private:
    chipdb::BudgetModel budget_;
    Calibration calibration_;
};

} // namespace accelwall::potential

#endif // ACCELWALL_POTENTIAL_MODEL_HH
