#include "nn/conv_dfg.hh"

#include <algorithm>
#include <array>

#include "util/logging.hh"

namespace accelwall::nn
{

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

namespace
{

NodeId
binary(Graph &g, OpType op, NodeId a, NodeId b)
{
    NodeId n = g.addNode(op);
    g.addEdge(a, n);
    g.addEdge(b, n);
    return n;
}

NodeId
unary(Graph &g, OpType op, NodeId a)
{
    NodeId n = g.addNode(op);
    g.addEdge(a, n);
    return n;
}

NodeId
reduce(Graph &g, std::vector<NodeId> values, OpType op)
{
    if (values.empty())
        fatal("makeLayerDfg: empty reduction");
    while (values.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < values.size(); i += 2)
            next.push_back(binary(g, op, values[i], values[i + 1]));
        if (values.size() % 2 == 1)
            next.push_back(values.back());
        values = std::move(next);
    }
    return values[0];
}

} // namespace

Graph
makeLayerDfg(const Layer &layer, int tile_w, int tile_h, int tile_c)
{
    if (tile_w < 1 || tile_h < 1 || tile_c < 1)
        fatal("makeLayerDfg: tile dimensions must be >= 1");

    Graph g("layer:" + layer.name);
    LayerCost cost = layerCost(layer);

    switch (layer.kind) {
      case LayerKind::Conv: {
        int tw = std::min(tile_w, cost.out_w);
        int th = std::min(tile_h, cost.out_h);
        int tc = std::min(tile_c, layer.out_c);
        // Receptive-field depth per output, capped for tractability.
        int rf = std::min<int>(layer.kernel * layer.kernel *
                                   layer.in_c / layer.groups,
                               256);
        for (int c = 0; c < tc; ++c) {
            for (int y = 0; y < th; ++y) {
                for (int x = 0; x < tw; ++x) {
                    std::vector<NodeId> prods;
                    prods.reserve(rf);
                    for (int k = 0; k < rf; ++k) {
                        NodeId act = g.addNode(OpType::Load);
                        NodeId wgt = g.addNode(OpType::Load);
                        prods.push_back(
                            binary(g, OpType::FMul, act, wgt));
                    }
                    NodeId acc = reduce(g, std::move(prods),
                                        OpType::FAdd);
                    // Bias + ReLU (Max with the zero constant).
                    NodeId bias = g.addNode(OpType::Load);
                    NodeId pre = binary(g, OpType::FAdd, acc, bias);
                    NodeId relu = g.addNode(OpType::Max);
                    g.addEdge(pre, relu);
                    NodeId st = g.addNode(OpType::Store);
                    g.addEdge(relu, st);
                }
            }
        }
        return g;
      }
      case LayerKind::FullyConnected: {
        int tc = std::min(tile_c, layer.out_c);
        int inputs = std::min(layer.in_w * layer.in_h * layer.in_c,
                              256);
        std::vector<NodeId> acts;
        for (int i = 0; i < inputs; ++i)
            acts.push_back(g.addNode(OpType::Load));
        for (int c = 0; c < tc; ++c) {
            std::vector<NodeId> prods;
            prods.reserve(inputs);
            for (int i = 0; i < inputs; ++i) {
                NodeId wgt = g.addNode(OpType::Load);
                prods.push_back(binary(g, OpType::FMul, acts[i], wgt));
            }
            NodeId acc = reduce(g, std::move(prods), OpType::FAdd);
            NodeId st = g.addNode(OpType::Store);
            g.addEdge(acc, st);
        }
        return g;
      }
      case LayerKind::Pool: {
        int tw = std::min(tile_w, cost.out_w);
        int th = std::min(tile_h, cost.out_h);
        int tc = std::min(tile_c, layer.in_c);
        for (int c = 0; c < tc; ++c) {
            for (int y = 0; y < th; ++y) {
                for (int x = 0; x < tw; ++x) {
                    std::vector<NodeId> window;
                    for (int k = 0; k < layer.kernel * layer.kernel;
                         ++k)
                        window.push_back(g.addNode(OpType::Load));
                    NodeId mx = reduce(g, std::move(window),
                                       OpType::Max);
                    NodeId st = g.addNode(OpType::Store);
                    g.addEdge(mx, st);
                }
            }
        }
        return g;
      }
    }
    panic("makeLayerDfg: unknown layer kind");
}

dfg::Graph
makeWinogradConvDfg(const Layer &layer, int tile_c, int max_in_c)
{
    if (layer.kind != LayerKind::Conv || layer.kernel != 3 ||
        layer.stride != 1)
        fatal("makeWinogradConvDfg: needs a 3x3 stride-1 Conv layer");
    if (tile_c < 1 || max_in_c < 1)
        fatal("makeWinogradConvDfg: tile parameters must be >= 1");

    Graph g("winograd:" + layer.name);
    int in_c = std::min(layer.in_c / layer.groups, max_in_c);
    int out_c = std::min(tile_c, layer.out_c);

    // Per input channel: load the 4x4 input tile and apply the
    // B^T d B transform. Each transformed element is a +/- combination
    // of four tile elements: modeled as a 3-add fold.
    std::vector<std::array<NodeId, 16>> transformed(in_c);
    for (int c = 0; c < in_c; ++c) {
        std::array<NodeId, 16> d;
        for (auto &px : d)
            px = g.addNode(OpType::Load);
        for (int e = 0; e < 16; ++e) {
            NodeId a0 = binary(g, OpType::FAdd, d[e],
                               d[(e + 5) % 16]);
            NodeId a1 = binary(g, OpType::FAdd, d[(e + 2) % 16],
                               d[(e + 7) % 16]);
            transformed[c][e] = binary(g, OpType::FSub, a0, a1);
        }
    }

    for (int oc = 0; oc < out_c; ++oc) {
        // Elementwise product with the (pre-transformed, folded)
        // weights: 16 multiplies per input channel.
        std::array<std::vector<NodeId>, 16> accum;
        for (int c = 0; c < in_c; ++c) {
            for (int e = 0; e < 16; ++e)
                accum[e].push_back(
                    unary(g, OpType::FMul, transformed[c][e]));
        }
        // Channel accumulation per element, then the A^T m A output
        // transform: each of the 4 outputs folds 9 elements (8 adds).
        std::array<NodeId, 16> m;
        for (int e = 0; e < 16; ++e)
            m[e] = reduce(g, std::move(accum[e]), OpType::FAdd);
        for (int o = 0; o < 4; ++o) {
            std::vector<NodeId> terms;
            for (int e = 0; e < 9; ++e)
                terms.push_back(m[(o * 2 + e) % 16]);
            NodeId px = reduce(g, std::move(terms), OpType::FAdd);
            NodeId st = g.addNode(OpType::Store);
            g.addEdge(px, st);
        }
    }
    return g;
}

} // namespace accelwall::nn
