#include "nn/layers.hh"

#include "util/logging.hh"

namespace accelwall::nn
{

LayerCost
layerCost(const Layer &layer)
{
    if (layer.in_w <= 0 || layer.in_h <= 0 || layer.in_c <= 0)
        fatal("layerCost: bad input geometry for '", layer.name, "'");
    if (layer.groups <= 0 || layer.in_c % layer.groups != 0)
        fatal("layerCost: bad group count for '", layer.name, "'");

    LayerCost cost;
    switch (layer.kind) {
      case LayerKind::Conv: {
        cost.out_w =
            (layer.in_w + 2 * layer.pad - layer.kernel) / layer.stride +
            1;
        cost.out_h =
            (layer.in_h + 2 * layer.pad - layer.kernel) / layer.stride +
            1;
        if (cost.out_w <= 0 || cost.out_h <= 0)
            fatal("layerCost: kernel larger than padded input in '",
                  layer.name, "'");
        double in_c_per_group =
            static_cast<double>(layer.in_c) / layer.groups;
        double per_output = layer.kernel * layer.kernel * in_c_per_group;
        double outputs = static_cast<double>(cost.out_w) * cost.out_h *
                         layer.out_c;
        cost.macs = outputs * per_output;
        cost.params =
            per_output * layer.out_c + layer.out_c; // weights + bias
        cost.activations = outputs;
        return cost;
      }
      case LayerKind::FullyConnected: {
        cost.out_w = 1;
        cost.out_h = 1;
        double inputs = static_cast<double>(layer.in_w) * layer.in_h *
                        layer.in_c;
        cost.macs = inputs * layer.out_c;
        cost.params = inputs * layer.out_c + layer.out_c;
        cost.activations = layer.out_c;
        return cost;
      }
      case LayerKind::Pool: {
        cost.out_w = (layer.in_w - layer.kernel) / layer.stride + 1;
        cost.out_h = (layer.in_h - layer.kernel) / layer.stride + 1;
        cost.macs = 0.0; // comparisons only
        cost.params = 0.0;
        cost.activations = static_cast<double>(cost.out_w) * cost.out_h *
                           layer.in_c;
        return cost;
      }
    }
    panic("layerCost: unknown layer kind");
}

ModelCost
modelCost(const std::vector<Layer> &layers)
{
    ModelCost total;
    for (const auto &layer : layers) {
        LayerCost c = layerCost(layer);
        total.total_macs += c.macs;
        total.total_params += c.params;
        total.total_activations += c.activations;
    }
    total.gops_per_image = total.total_macs * 2.0 / 1e9;
    return total;
}

const std::vector<Layer> &
alexnetLayers()
{
    // Krizhevsky et al. 2012 geometry (227x227 input convention).
    //   name    kind                    in_w in_h in_c out_c  k  s  p  g
    static const std::vector<Layer> layers = {
        { "conv1", LayerKind::Conv,           227, 227, 3,   96, 11, 4, 0, 1 },
        { "pool1", LayerKind::Pool,           55, 55, 96,    96, 3, 2, 0, 1 },
        { "conv2", LayerKind::Conv,           27, 27, 96,   256, 5, 1, 2, 2 },
        { "pool2", LayerKind::Pool,           27, 27, 256, 256, 3, 2, 0, 1 },
        { "conv3", LayerKind::Conv,           13, 13, 256, 384, 3, 1, 1, 1 },
        { "conv4", LayerKind::Conv,           13, 13, 384, 384, 3, 1, 1, 2 },
        { "conv5", LayerKind::Conv,           13, 13, 384, 256, 3, 1, 1, 2 },
        { "pool5", LayerKind::Pool,           13, 13, 256, 256, 3, 2, 0, 1 },
        { "fc6", LayerKind::FullyConnected,   6, 6, 256,   4096, 1, 1, 0, 1 },
        { "fc7", LayerKind::FullyConnected,   1, 1, 4096, 4096, 1, 1, 0, 1 },
        { "fc8", LayerKind::FullyConnected,   1, 1, 4096, 1000, 1, 1, 0, 1 },
    };
    return layers;
}

const std::vector<Layer> &
vgg16Layers()
{
    //   name     kind                   in_w in_h in_c  out_c k  s  p  g
    static const std::vector<Layer> layers = {
        { "conv1_1", LayerKind::Conv,         224, 224, 3,    64, 3, 1, 1, 1 },
        { "conv1_2", LayerKind::Conv,         224, 224, 64,   64, 3, 1, 1, 1 },
        { "pool1", LayerKind::Pool,           224, 224, 64,   64, 2, 2, 0, 1 },
        { "conv2_1", LayerKind::Conv,         112, 112, 64,  128, 3, 1, 1, 1 },
        { "conv2_2", LayerKind::Conv,         112, 112, 128, 128, 3, 1, 1, 1 },
        { "pool2", LayerKind::Pool,           112, 112, 128, 128, 2, 2, 0, 1 },
        { "conv3_1", LayerKind::Conv,         56, 56, 128,   256, 3, 1, 1, 1 },
        { "conv3_2", LayerKind::Conv,         56, 56, 256,   256, 3, 1, 1, 1 },
        { "conv3_3", LayerKind::Conv,         56, 56, 256,   256, 3, 1, 1, 1 },
        { "pool3", LayerKind::Pool,           56, 56, 256,   256, 2, 2, 0, 1 },
        { "conv4_1", LayerKind::Conv,         28, 28, 256,   512, 3, 1, 1, 1 },
        { "conv4_2", LayerKind::Conv,         28, 28, 512,   512, 3, 1, 1, 1 },
        { "conv4_3", LayerKind::Conv,         28, 28, 512,   512, 3, 1, 1, 1 },
        { "pool4", LayerKind::Pool,           28, 28, 512,   512, 2, 2, 0, 1 },
        { "conv5_1", LayerKind::Conv,         14, 14, 512,   512, 3, 1, 1, 1 },
        { "conv5_2", LayerKind::Conv,         14, 14, 512,   512, 3, 1, 1, 1 },
        { "conv5_3", LayerKind::Conv,         14, 14, 512,   512, 3, 1, 1, 1 },
        { "pool5", LayerKind::Pool,           14, 14, 512,   512, 2, 2, 0, 1 },
        { "fc6", LayerKind::FullyConnected,   7, 7, 512,    4096, 1, 1, 0, 1 },
        { "fc7", LayerKind::FullyConnected,   1, 1, 4096,   4096, 1, 1, 0, 1 },
        { "fc8", LayerKind::FullyConnected,   1, 1, 4096,   1000, 1, 1, 0, 1 },
    };
    return layers;
}

} // namespace accelwall::nn
