/**
 * @file
 * Convolution-layer DFG generator: turns an nn::Layer into a dataflow
 * graph the pre-RTL simulator can schedule, at a reduced tile size.
 * This connects the real network topologies to the Section VI flow
 * (and to the TPU model's workloads).
 */

#ifndef ACCELWALL_NN_CONV_DFG_HH
#define ACCELWALL_NN_CONV_DFG_HH

#include "dfg/graph.hh"
#include "nn/layers.hh"

namespace accelwall::nn
{

/**
 * Build the DFG of one output tile of a layer.
 *
 * For Conv layers, a @p tile_w x @p tile_h x @p tile_c output tile is
 * generated with the layer's true receptive field per output (kernel²
 * x in_c/groups multiplies folded by an add tree). For FC layers, the
 * tile covers @p tile_c output neurons over a capped input slice. Pool
 * layers emit Max trees.
 *
 * Tiles are capped so the graph stays tractable; the structure (depth,
 * working set, operation mix) is what the simulator consumes.
 */
dfg::Graph makeLayerDfg(const Layer &layer, int tile_w = 4,
                        int tile_h = 4, int tile_c = 8);

/**
 * Winograd F(2x2, 3x3) convolution tile (the algorithmic optimization
 * the paper's FPGA2017* design used: "applied the Winograd transform
 * ... to improve throughput by minimizing the complexity of
 * convolutional operations").
 *
 * Produces one 2x2 output tile per output channel: per input channel a
 * 4x4 input transform (additions), a 16-multiply elementwise product
 * (vs 36 multiplies direct), channel accumulation, and a 4-point
 * output transform. Only valid for 3x3 stride-1 convolutions.
 *
 * @param layer A Conv layer with kernel 3 and stride 1.
 * @param tile_c Output channels in the tile.
 * @param max_in_c Receptive-depth cap matching makeLayerDfg's.
 */
dfg::Graph makeWinogradConvDfg(const Layer &layer, int tile_c = 8,
                               int max_in_c = 28);

} // namespace accelwall::nn

#endif // ACCELWALL_NN_CONV_DFG_HH
