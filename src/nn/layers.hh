/**
 * @file
 * CNN layer shapes and costs for AlexNet and VGG-16.
 *
 * The FPGA case study (Section IV-C) explains AlexNet's larger gains
 * by model size: "The amount of data needed to represent VGG-16 is
 * three times the amount of data for AlexNet, and the amount of
 * operations per image is about 20x." This module encodes both
 * networks layer by layer and computes MACs, parameters, and
 * activation footprints so that claim — and the workloads the TPU
 * model (Section V) runs — is grounded in the real topologies.
 */

#ifndef ACCELWALL_NN_LAYERS_HH
#define ACCELWALL_NN_LAYERS_HH

#include <string>
#include <vector>

namespace accelwall::nn
{

/** Layer species. */
enum class LayerKind
{
    Conv,
    FullyConnected,
    Pool,
};

/** One network layer. */
struct Layer
{
    std::string name;
    LayerKind kind = LayerKind::Conv;
    /** Input feature map: width, height, channels. */
    int in_w = 0;
    int in_h = 0;
    int in_c = 0;
    /** Output channels (Conv/FC) — FC treats in/out as 1x1 maps. */
    int out_c = 0;
    /** Square kernel size, stride, padding, and channel groups. */
    int kernel = 1;
    int stride = 1;
    int pad = 0;
    int groups = 1;
};

/** Derived per-layer costs. */
struct LayerCost
{
    /** Output feature-map width/height. */
    int out_w = 0;
    int out_h = 0;
    /** Multiply-accumulates per inference. */
    double macs = 0.0;
    /** Weight (+bias) parameters. */
    double params = 0.0;
    /** Output activations. */
    double activations = 0.0;
};

/** Whole-network roll-up. */
struct ModelCost
{
    double total_macs = 0.0;
    double total_params = 0.0;
    double total_activations = 0.0;
    /** Operations per image in GOP, counting a MAC as two ops. */
    double gops_per_image = 0.0;
};

/** Compute one layer's costs; fatal() on inconsistent geometry. */
LayerCost layerCost(const Layer &layer);

/** Roll up a network. */
ModelCost modelCost(const std::vector<Layer> &layers);

/** AlexNet (Krizhevsky et al., 2012): 5 conv + 3 FC, ~61M params. */
const std::vector<Layer> &alexnetLayers();

/** VGG-16 (Simonyan & Zisserman, 2014): 13 conv + 3 FC, ~138M. */
const std::vector<Layer> &vgg16Layers();

} // namespace accelwall::nn

#endif // ACCELWALL_NN_LAYERS_HH
