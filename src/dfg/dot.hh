/**
 * @file
 * Graphviz DOT export for DFGs — the standard way to eyeball a kernel
 * generator's output or a dfgopt rewrite.
 */

#ifndef ACCELWALL_DFG_DOT_HH
#define ACCELWALL_DFG_DOT_HH

#include <iosfwd>
#include <string>

#include "dfg/graph.hh"

namespace accelwall::dfg
{

/** DOT rendering options. */
struct DotOptions
{
    /** Rank nodes by ASAP stage (left-to-right dataflow). */
    bool rank_by_stage = true;
    /**
     * Graphs above this size render as a stage-level summary instead
     * of one node per vertex (Graphviz chokes on multi-thousand-node
     * digraphs).
     */
    std::size_t max_nodes = 400;
};

/** Render @p graph as DOT text. */
std::string toDot(const Graph &graph, const DotOptions &options = {});

/** Render to a stream. */
void writeDot(std::ostream &os, const Graph &graph,
              const DotOptions &options = {});

} // namespace accelwall::dfg

#endif // ACCELWALL_DFG_DOT_HH
