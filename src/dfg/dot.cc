#include "dfg/dot.hh"

#include <map>
#include <ostream>
#include <sstream>

#include "dfg/analysis.hh"

namespace accelwall::dfg
{

namespace
{

const char *
shapeOf(OpType op)
{
    if (isMemory(op))
        return "box";
    if (isVariable(op))
        return "plaintext";
    return "ellipse";
}

} // namespace

void
writeDot(std::ostream &os, const Graph &graph, const DotOptions &options)
{
    os << "digraph \"" << graph.name() << "\" {\n";
    os << "  rankdir=TB;\n";
    os << "  label=\"" << graph.name() << ": |V|=" << graph.numNodes()
       << " |E|=" << graph.numEdges() << "\";\n";

    if (graph.numNodes() > options.max_nodes) {
        // Stage-level summary: one record per ASAP stage with its
        // population, edges between consecutive stages.
        Analysis a = analyze(graph);
        std::map<std::size_t, std::map<std::string, std::size_t>> mix;
        for (NodeId id = 0; id < graph.numNodes(); ++id)
            ++mix[a.stage[id]][opName(graph.op(id))];
        for (std::size_t s = 0; s < a.stage_sizes.size(); ++s) {
            os << "  stage" << s << " [shape=record,label=\"stage " << s
               << " | " << a.stage_sizes[s] << " nodes";
            for (const auto &[op, count] : mix[s])
                os << " | " << op << ": " << count;
            os << "\"];\n";
        }
        for (std::size_t s = 0; s + 1 < a.stage_sizes.size(); ++s)
            os << "  stage" << s << " -> stage" << s + 1 << ";\n";
        os << "}\n";
        return;
    }

    for (NodeId id = 0; id < graph.numNodes(); ++id) {
        os << "  n" << id << " [label=\"" << opName(graph.op(id)) << " #"
           << id << "\",shape=" << shapeOf(graph.op(id)) << "];\n";
    }
    for (NodeId id = 0; id < graph.numNodes(); ++id) {
        for (NodeId succ : graph.succs(id))
            os << "  n" << id << " -> n" << succ << ";\n";
    }

    if (options.rank_by_stage) {
        Analysis a = analyze(graph);
        std::map<std::size_t, std::vector<NodeId>> by_stage;
        for (NodeId id = 0; id < graph.numNodes(); ++id)
            by_stage[a.stage[id]].push_back(id);
        for (const auto &[stage, nodes] : by_stage) {
            os << "  { rank=same;";
            for (NodeId id : nodes)
                os << " n" << id << ";";
            os << " }\n";
        }
    }
    os << "}\n";
}

std::string
toDot(const Graph &graph, const DotOptions &options)
{
    std::ostringstream oss;
    writeDot(oss, graph, options);
    return oss.str();
}

} // namespace accelwall::dfg
