#include "dfg/verify.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <queue>
#include <sstream>

#include "concepts/bounds.hh"
#include "dfg/analysis.hh"
#include "util/logging.hh"

namespace accelwall::dfg::verify
{

namespace
{

/** Widths above this are assumed to be corrupted metadata, not data. */
constexpr int kMaxWidth = 1024;

struct RuleInfo
{
    const char *code;
    const char *name;
    Severity severity;
};

const RuleInfo &
ruleInfo(RuleId rule)
{
    static const RuleInfo table[kNumRules] = {
        { "V001", "empty-graph", Severity::Error },
        { "V002", "cycle", Severity::Error },
        { "V003", "dangling-edge", Severity::Error },
        { "V004", "edge-mirror", Severity::Error },
        { "V005", "duplicate-edge", Severity::Note },
        { "V006", "arity-mismatch", Severity::Error },
        { "V007", "variable-placement", Severity::Error },
        { "V008", "type-mismatch", Severity::Error },
        { "V009", "width-narrowing", Severity::Error },
        { "V010", "width-imbalance", Severity::Warning },
        { "V011", "memory-addressing", Severity::Error },
        { "V012", "unreachable-node", Severity::Error },
        { "V013", "dead-node", Severity::Warning },
        { "V014", "bound-consistency", Severity::Error },
        { "R001", "rewrite-inputs", Severity::Error },
        { "R002", "rewrite-sinks", Severity::Error },
        { "R003", "rewrite-depth", Severity::Error },
        { "R004", "rewrite-accounting", Severity::Error },
    };
    return table[static_cast<std::size_t>(rule)];
}

/** Value domain an operation produces and consumes. */
enum class Domain
{
    Neutral, ///< variables, memory, lookups, comparisons, selections
    Int,
    Float,
};

Domain
domainOf(OpType op)
{
    switch (op) {
      case OpType::Add:
      case OpType::Sub:
      case OpType::Mul:
      case OpType::Div:
      case OpType::And:
      case OpType::Or:
      case OpType::Xor:
      case OpType::Shift:
        return Domain::Int;
      case OpType::FAdd:
      case OpType::FSub:
      case OpType::FMul:
      case OpType::FDiv:
      case OpType::Sqrt:
      case OpType::Exp:
        return Domain::Float;
      default:
        return Domain::Neutral;
    }
}

/** Allowed operand-count range per operation. */
struct Arity
{
    std::size_t min;
    std::size_t max;
};

Arity
arityOf(OpType op)
{
    switch (op) {
      case OpType::Input:
        return { 0, 0 };
      case OpType::Output:
        return { 1, 1 };
      case OpType::Load:
        // Root load (streamed array element) or one address operand.
        return { 0, 1 };
      case OpType::Store:
        // Stored value, optionally plus a computed address.
        return { 1, 2 };
      case OpType::Lut:
        return { 1, 2 };
      case OpType::Select:
        return { 2, 3 };
      case OpType::Cmp:
        // Unary form compares against a folded immediate.
        return { 1, 2 };
      case OpType::Sqrt:
      case OpType::Exp:
        return { 1, 1 };
      default:
        // Binary arithmetic/logic; the unary form carries a folded
        // constant operand the DFG does not represent.
        return { 1, 2 };
    }
}

/**
 * Operations whose operands and result must agree in width: implicit
 * truncation inside e.g. an adder is a modeling error. Shift, Cmp,
 * Select, and Lut legitimately mix widths (shift amounts, 1-bit
 * predicates, table indices).
 */
bool
isWidthStrict(OpType op)
{
    switch (op) {
      case OpType::Add:
      case OpType::Sub:
      case OpType::Mul:
      case OpType::Div:
      case OpType::And:
      case OpType::Or:
      case OpType::Xor:
      case OpType::Max:
      case OpType::Min:
      case OpType::FAdd:
      case OpType::FSub:
      case OpType::FMul:
      case OpType::FDiv:
      case OpType::Sqrt:
      case OpType::Exp:
        return true;
      default:
        return false;
    }
}

/** Accumulates diagnostics into a Report, honoring the cap. */
class Emitter
{
  public:
    Emitter(Report &report, const Options &options, std::string graph)
        : report_(report), options_(options), graph_(std::move(graph))
    {
    }

    void
    emit(RuleId rule, std::optional<NodeId> node,
         std::optional<std::pair<NodeId, NodeId>> edge, std::string msg,
         std::optional<Severity> severity_override = std::nullopt)
    {
        Severity sev = severity_override.value_or(defaultSeverity(rule));
        if (sev == Severity::Warning && options_.warnings_as_errors)
            sev = Severity::Error;
        switch (sev) {
          case Severity::Error: ++report_.num_errors; break;
          case Severity::Warning: ++report_.num_warnings; break;
          case Severity::Note: ++report_.num_notes; break;
        }
        if (report_.diagnostics.size() >= options_.max_diagnostics) {
            ++report_.suppressed;
            return;
        }
        Diagnostic d;
        d.rule = rule;
        d.severity = sev;
        d.graph = graph_;
        d.node = node;
        d.edge = edge;
        d.message = std::move(msg);
        report_.diagnostics.push_back(std::move(d));
    }

    void
    node(RuleId rule, NodeId id, std::string msg,
         std::optional<Severity> severity_override = std::nullopt)
    {
        emit(rule, id, std::nullopt, std::move(msg), severity_override);
    }

    void
    edge(RuleId rule, NodeId from, NodeId to, std::string msg,
         std::optional<Severity> severity_override = std::nullopt)
    {
        emit(rule, std::nullopt, std::make_pair(from, to), std::move(msg),
             severity_override);
    }

    void
    graph(RuleId rule, std::string msg)
    {
        emit(rule, std::nullopt, std::nullopt, std::move(msg));
    }

  private:
    Report &report_;
    const Options &options_;
    std::string graph_;
};

/** "add" or "add node 17" style labels for messages. */
std::string
nodeLabel(const RawGraph &g, NodeId id)
{
    std::ostringstream oss;
    oss << opName(g.ops[id]) << " node " << id;
    return oss.str();
}

int
widthOf(const RawGraph &g, NodeId id)
{
    return g.widths.empty() ? kDefaultWidth : g.widths[id];
}

/**
 * The structural quantities the Table II cross-check reads, computed
 * straight from the validated adjacency (mirrors dfg::analyze, which
 * requires a Graph and fatals on cycles — by this point both rule sets
 * have already run).
 */
Analysis
analyzeRaw(const RawGraph &g,
           const std::vector<std::vector<NodeId>> &preds,
           const std::vector<std::vector<NodeId>> &succs,
           const std::vector<NodeId> &topo)
{
    Analysis a;
    a.num_nodes = g.ops.size();
    a.num_edges = g.edges.size();
    a.stage.assign(a.num_nodes, 0);
    for (NodeId id : topo) {
        if (preds[id].empty()) {
            ++a.num_inputs;
            continue;
        }
        std::size_t max_stage = 0;
        for (NodeId p : preds[id])
            max_stage = std::max(max_stage, a.stage[p] + 1);
        a.stage[id] = max_stage;
    }
    std::size_t max_stage = 0;
    for (NodeId id = 0; id < a.num_nodes; ++id) {
        if (succs[id].empty())
            ++a.num_outputs;
        max_stage = std::max(max_stage, a.stage[id]);
    }
    a.depth = max_stage + 1;
    a.stage_sizes.assign(max_stage + 1, 0);
    for (NodeId id = 0; id < a.num_nodes; ++id)
        ++a.stage_sizes[a.stage[id]];
    a.max_working_set =
        *std::max_element(a.stage_sizes.begin(), a.stage_sizes.end());
    return a;
}

/**
 * V014: the evaluated Table II cells must stay consistent with the
 * structural analysis they were derived from — the dimensional floors
 * a well-formed DFG cannot beat.
 */
void
checkBounds(const Analysis &a, Emitter &out)
{
    auto fail = [&](const std::string &what) {
        out.graph(RuleId::BoundConsistency, what);
    };

    std::ostringstream oss;
    if (a.depth > a.num_nodes)
        fail("depth exceeds |V|");
    std::size_t staged = 0;
    for (std::size_t s : a.stage_sizes)
        staged += s;
    if (staged != a.num_nodes)
        fail("stage sizes do not partition |V|");
    if (a.max_working_set > a.num_nodes)
        fail("max|WS| exceeds |V|");
    // Every non-source node has at least one incoming edge, and the
    // critical path alone needs D-1 of them: |E| floors.
    if (a.num_edges + a.num_inputs < a.num_nodes) {
        oss.str("");
        oss << "|E|=" << a.num_edges << " beats the connectivity floor |V|-"
            << "|V_IN|=" << (a.num_nodes - a.num_inputs);
        fail(oss.str());
    }
    if (a.num_edges + 1 < a.depth) {
        oss.str("");
        oss << "|E|=" << a.num_edges << " beats the critical-path floor D-1="
            << (a.depth - 1);
        fail(oss.str());
    }

    // The Θ-cells that evaluate to bare structural quantities must
    // reproduce them exactly; drift means bounds.hh and the analysis
    // disagree about the graph.
    using concepts::Component;
    using concepts::SpecConcept;
    auto expectTime = [&](Component c, SpecConcept s, std::size_t want,
                          const char *what) {
        concepts::Bound b = concepts::bound(a, c, s);
        if (b.time != static_cast<double>(want)) {
            oss.str("");
            oss << "Table II " << concepts::componentName(c) << "/"
                << concepts::conceptName(s) << " time Θ(" << b.time_expr
                << ")=" << b.time << " disagrees with " << what << "="
                << want;
            fail(oss.str());
        }
    };
    expectTime(Component::Communication, SpecConcept::Heterogeneity,
               a.depth, "D");
    expectTime(Component::Computation, SpecConcept::Simplification,
               a.num_edges, "|E|");
    expectTime(Component::Computation, SpecConcept::Heterogeneity,
               a.num_inputs, "|V_IN|");

    // Every cell must evaluate to a finite, non-negative log2 space.
    for (Component c : { Component::Memory, Component::Communication,
                         Component::Computation }) {
        for (SpecConcept s : { SpecConcept::Simplification,
                               SpecConcept::Partitioning,
                               SpecConcept::Heterogeneity }) {
            concepts::Bound b = concepts::bound(a, c, s);
            if (!std::isfinite(b.log2_space) || b.log2_space < 0.0 ||
                b.time < 0.0) {
                oss.str("");
                oss << "Table II " << concepts::componentName(c) << "/"
                    << concepts::conceptName(s)
                    << " evaluates out of range (time=" << b.time
                    << ", log2 space=" << b.log2_space << ")";
                fail(oss.str());
            }
        }
    }
}

} // namespace

const char *
ruleCode(RuleId rule)
{
    return ruleInfo(rule).code;
}

const char *
ruleName(RuleId rule)
{
    return ruleInfo(rule).name;
}

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

Severity
defaultSeverity(RuleId rule)
{
    return ruleInfo(rule).severity;
}

std::string
Diagnostic::str() const
{
    std::ostringstream oss;
    oss << graph << ": " << severityName(severity) << " " << ruleCode(rule)
        << " " << ruleName(rule);
    if (node)
        oss << " (node " << *node << ")";
    if (edge)
        oss << " (edge " << edge->first << "->" << edge->second << ")";
    oss << ": " << message;
    return oss.str();
}

bool
Report::fired(RuleId rule) const
{
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [rule](const Diagnostic &d) {
                           return d.rule == rule;
                       });
}

std::string
Report::summary() const
{
    std::ostringstream oss;
    oss << num_errors << (num_errors == 1 ? " error, " : " errors, ")
        << num_warnings << (num_warnings == 1 ? " warning, " : " warnings, ")
        << num_notes << (num_notes == 1 ? " note" : " notes");
    if (suppressed > 0)
        oss << " (" << suppressed << " diagnostics suppressed)";
    return oss.str();
}

void
Report::merge(const Report &other)
{
    diagnostics.insert(diagnostics.end(), other.diagnostics.begin(),
                       other.diagnostics.end());
    num_errors += other.num_errors;
    num_warnings += other.num_warnings;
    num_notes += other.num_notes;
    suppressed += other.suppressed;
}

RawGraph
rawFrom(const Graph &graph)
{
    RawGraph raw;
    raw.name = graph.name();
    std::size_t n = graph.numNodes();
    raw.ops.reserve(n);
    raw.widths.reserve(n);
    for (NodeId id = 0; id < n; ++id) {
        raw.ops.push_back(graph.op(id));
        raw.widths.push_back(graph.width(id));
        for (NodeId succ : graph.succs(id))
            raw.edges.emplace_back(id, succ);
    }
    return raw;
}

Report
verify(const RawGraph &g, const Options &options)
{
    Report report;
    Emitter out(report, options, g.name);

    if (g.ops.empty()) {
        out.graph(RuleId::EmptyGraph, "graph has no nodes");
        return report;
    }
    if (!g.widths.empty() && g.widths.size() != g.ops.size())
        panic("verify: '", g.name, "' has ", g.widths.size(),
              " widths for ", g.ops.size(), " nodes");

    const std::size_t n = g.ops.size();

    // Declared widths must be physical before any propagation check.
    for (NodeId id = 0; id < n; ++id) {
        int w = widthOf(g, id);
        if (w < 1 || w > kMaxWidth) {
            std::ostringstream oss;
            oss << nodeLabel(g, id) << " declares width " << w
                << " bits, outside [1, " << kMaxWidth << "]";
            out.node(RuleId::WidthImbalance, id, oss.str(),
                     Severity::Error);
        }
    }

    // V003/V002 (structural): edges must join existing, distinct nodes.
    // Invalid edges are excluded from the adjacency all later rules use.
    std::vector<std::vector<NodeId>> preds(n), succs(n);
    std::vector<std::pair<NodeId, NodeId>> valid_edges;
    valid_edges.reserve(g.edges.size());
    for (const auto &[from, to] : g.edges) {
        if (from >= n || to >= n) {
            std::ostringstream oss;
            oss << "edge endpoint out of range (graph has " << n
                << " nodes)";
            out.edge(RuleId::DanglingEdge, from, to, oss.str());
            continue;
        }
        if (from == to) {
            out.edge(RuleId::Cycle, from, to,
                     "self edge (a one-node cycle)");
            continue;
        }
        preds[to].push_back(from);
        succs[from].push_back(to);
        valid_edges.emplace_back(from, to);
    }

    // V005: duplicate edges. Operand repetition (x*x) is legal, so this
    // is informational by default.
    {
        auto sorted = valid_edges;
        std::sort(sorted.begin(), sorted.end());
        for (std::size_t i = 0; i + 1 < sorted.size();) {
            std::size_t run = 1;
            while (i + run < sorted.size() && sorted[i + run] == sorted[i])
                ++run;
            if (run > 1) {
                std::ostringstream oss;
                oss << "edge appears " << run
                    << " times (repeated operand)";
                out.edge(RuleId::DuplicateEdge, sorted[i].first,
                         sorted[i].second, oss.str());
            }
            i += run;
        }
    }

    // V002: Kahn's algorithm; whatever cannot be scheduled is cyclic.
    std::vector<std::size_t> in_degree(n);
    for (NodeId id = 0; id < n; ++id)
        in_degree[id] = preds[id].size();
    std::queue<NodeId> ready;
    for (NodeId id = 0; id < n; ++id) {
        if (in_degree[id] == 0)
            ready.push(id);
    }
    std::vector<NodeId> topo;
    topo.reserve(n);
    while (!ready.empty()) {
        NodeId id = ready.front();
        ready.pop();
        topo.push_back(id);
        for (NodeId succ : succs[id]) {
            if (--in_degree[succ] == 0)
                ready.push(succ);
        }
    }
    const bool cyclic = topo.size() != n;
    if (cyclic) {
        NodeId sample = 0;
        for (NodeId id = 0; id < n; ++id) {
            if (in_degree[id] > 0) {
                sample = id;
                break;
            }
        }
        std::ostringstream oss;
        oss << (n - topo.size()) << " nodes form or feed from a cycle"
            << " (e.g. " << nodeLabel(g, sample) << ")";
        out.node(RuleId::Cycle, sample, oss.str());
    }

    // V006/V007: operand arity and variable placement.
    for (NodeId id = 0; id < n; ++id) {
        OpType op = g.ops[id];
        std::size_t num_preds = preds[id].size();
        if (op == OpType::Input || op == OpType::Output) {
            if (op == OpType::Input && num_preds != 0) {
                std::ostringstream oss;
                oss << "input variable has " << num_preds
                    << " incoming edges; V_IN nodes are pure sources";
                out.node(RuleId::VariablePlacement, id, oss.str());
            }
            if (op == OpType::Output) {
                if (num_preds != 1) {
                    std::ostringstream oss;
                    oss << "output variable has " << num_preds
                        << " producers, expected exactly 1";
                    out.node(RuleId::VariablePlacement, id, oss.str());
                }
                if (!succs[id].empty()) {
                    std::ostringstream oss;
                    oss << "output variable feeds " << succs[id].size()
                        << " consumers; V_OUT nodes are pure sinks";
                    out.node(RuleId::VariablePlacement, id, oss.str());
                }
            }
            continue;
        }
        Arity want = arityOf(op);
        if (num_preds < want.min || num_preds > want.max) {
            std::ostringstream oss;
            oss << nodeLabel(g, id) << " has " << num_preds
                << " operands, expected " << want.min;
            if (want.max != want.min)
                oss << ".." << want.max;
            out.node(RuleId::ArityMismatch, id, oss.str());
        }
    }

    // V008: the vocabulary has no int<->float conversion node, so a
    // direct edge between the two strict domains is always a modeling
    // error.
    for (const auto &[from, to] : valid_edges) {
        Domain a = domainOf(g.ops[from]);
        Domain b = domainOf(g.ops[to]);
        if (a != Domain::Neutral && b != Domain::Neutral && a != b) {
            std::ostringstream oss;
            oss << opName(g.ops[from]) << " result consumed by "
                << opName(g.ops[to]) << " with no conversion node";
            out.edge(RuleId::TypeMismatch, from, to, oss.str());
        }
    }

    // V009/V010: width propagation. A width-strict node must be at
    // least as wide as its operands (narrowing silently truncates) and
    // its operands should agree with each other.
    for (NodeId id = 0; id < n; ++id) {
        OpType op = g.ops[id];
        if (preds[id].empty())
            continue;
        int w = widthOf(g, id);
        if (isWidthStrict(op)) {
            int wmin = kMaxWidth + 1, wmax = 0;
            for (NodeId p : preds[id]) {
                wmin = std::min(wmin, widthOf(g, p));
                wmax = std::max(wmax, widthOf(g, p));
            }
            if (w < wmax) {
                std::ostringstream oss;
                oss << nodeLabel(g, id) << " is " << w
                    << " bits but consumes a " << wmax
                    << "-bit operand (silent truncation)";
                out.node(RuleId::WidthNarrowing, id, oss.str());
            }
            if (preds[id].size() >= 2 && wmin != wmax) {
                std::ostringstream oss;
                oss << nodeLabel(g, id) << " mixes operand widths "
                    << wmin << " and " << wmax << " bits";
                out.node(RuleId::WidthImbalance, id, oss.str());
            }
        } else if (op == OpType::Shift) {
            // Only the shifted value (operand 0) carries the datapath
            // width; the shift amount may be narrow.
            int w0 = widthOf(g, preds[id][0]);
            if (w < w0) {
                std::ostringstream oss;
                oss << nodeLabel(g, id) << " is " << w
                    << " bits but shifts a " << w0 << "-bit value";
                out.node(RuleId::WidthNarrowing, id, oss.str());
            }
        } else if (op == OpType::Store) {
            int w0 = widthOf(g, preds[id][0]);
            if (w < w0) {
                std::ostringstream oss;
                oss << nodeLabel(g, id) << " is " << w
                    << " bits but stores a " << w0 << "-bit value";
                out.node(RuleId::WidthNarrowing, id, oss.str());
            }
        }
    }

    // V011: memory addressing. Addresses are integral, and a store's
    // value leaves the datapath — nothing may consume it.
    for (NodeId id = 0; id < n; ++id) {
        OpType op = g.ops[id];
        if (op == OpType::Load && !preds[id].empty()) {
            NodeId addr = preds[id][0];
            if (domainOf(g.ops[addr]) == Domain::Float) {
                std::ostringstream oss;
                oss << "load address computed by floating-point "
                    << nodeLabel(g, addr);
                out.edge(RuleId::MemoryAddressing, addr, id, oss.str());
            }
        }
        if (op == OpType::Store && !succs[id].empty()) {
            std::ostringstream oss;
            oss << "store feeds " << succs[id].size()
                << " consumers; stores are memory sinks";
            out.node(RuleId::MemoryAddressing, id, oss.str());
        }
    }

    // V012: every value must originate from a legitimate source — an
    // input variable or a root load. (A pred-less compute node already
    // fails V006; here we flag everything only it can feed.)
    {
        std::vector<char> reach(n, 0);
        std::queue<NodeId> frontier;
        for (NodeId id = 0; id < n; ++id) {
            OpType op = g.ops[id];
            if (preds[id].empty() &&
                (op == OpType::Input || op == OpType::Load)) {
                reach[id] = 1;
                frontier.push(id);
            }
        }
        while (!frontier.empty()) {
            NodeId id = frontier.front();
            frontier.pop();
            for (NodeId succ : succs[id]) {
                // Only mark a consumer once every producer on some
                // path is itself sourced; forward reachability from
                // legit sources is the relaxed version we check.
                if (!reach[succ]) {
                    reach[succ] = 1;
                    frontier.push(succ);
                }
            }
        }
        for (NodeId id = 0; id < n; ++id) {
            if (!reach[id] && !preds[id].empty()) {
                std::ostringstream oss;
                oss << nodeLabel(g, id)
                    << " is not reachable from any input or root load";
                out.node(RuleId::UnreachableNode, id, oss.str());
            }
        }
    }

    // V013: work must be observable. Effectful nodes are outputs,
    // stores, and loads (memory traffic is architecturally visible);
    // anything that cannot reach one is wasted datapath.
    {
        std::vector<char> live(n, 0);
        std::queue<NodeId> frontier;
        for (NodeId id = 0; id < n; ++id) {
            OpType op = g.ops[id];
            if (op == OpType::Output || op == OpType::Store ||
                op == OpType::Load) {
                live[id] = 1;
                frontier.push(id);
            }
        }
        while (!frontier.empty()) {
            NodeId id = frontier.front();
            frontier.pop();
            for (NodeId pred : preds[id]) {
                if (!live[pred]) {
                    live[pred] = 1;
                    frontier.push(pred);
                }
            }
        }
        for (NodeId id = 0; id < n; ++id) {
            if (!live[id]) {
                std::ostringstream oss;
                oss << nodeLabel(g, id)
                    << " cannot reach any output, store, or load";
                out.node(RuleId::DeadNode, id, oss.str());
            }
        }
    }

    // V014: cross-check the Table II machinery — only meaningful once
    // the structure itself is sound.
    if (options.check_bounds && !cyclic &&
        !report.fired(RuleId::DanglingEdge)) {
        Analysis a = analyzeRaw(g, preds, succs, topo);
        checkBounds(a, out);
    }

    return report;
}

Report
verify(const Graph &graph, const Options &options)
{
    Report report;
    Emitter out(report, options, graph.name());

    // V004: the two adjacency views must describe the same edge
    // multiset, and their totals must match the edge counter.
    std::map<std::pair<NodeId, NodeId>, long> balance;
    std::size_t from_succs = 0, from_preds = 0;
    for (NodeId id = 0; id < graph.numNodes(); ++id) {
        for (NodeId succ : graph.succs(id)) {
            ++balance[{ id, succ }];
            ++from_succs;
        }
        for (NodeId pred : graph.preds(id)) {
            --balance[{ pred, id }];
            ++from_preds;
        }
    }
    for (const auto &[e, delta] : balance) {
        if (delta != 0) {
            std::ostringstream oss;
            oss << "edge recorded " << (delta > 0 ? "in succs" : "in preds")
                << " only (multiplicity skew " << delta << ")";
            out.edge(RuleId::EdgeMirror, e.first, e.second, oss.str());
        }
    }
    if (from_succs != graph.numEdges() || from_preds != graph.numEdges()) {
        std::ostringstream oss;
        oss << "edge counter says " << graph.numEdges() << " but succs hold "
            << from_succs << " and preds hold " << from_preds;
        out.graph(RuleId::EdgeMirror, oss.str());
    }

    Report structural = verify(rawFrom(graph), options);
    report.merge(structural);
    return report;
}

Report
verifyRewrite(const Graph &before, const Graph &after,
              const Options &options)
{
    // The rewritten graph must itself pass every single-graph rule.
    Report report = verify(after, options);
    Emitter out(report, options, after.name());

    // Pair rules need both analyses; skip them if either side is too
    // broken to analyze (a cyclic graph would fatal in analyze()).
    Options quiet = options;
    quiet.check_bounds = false;
    if (!verify(before, quiet).ok() || !report.ok())
        return report;

    Analysis a = analyze(before);
    Analysis b = analyze(after);

    if (a.num_inputs != b.num_inputs) {
        std::ostringstream oss;
        oss << "rewrite changed |V_IN| from " << a.num_inputs << " to "
            << b.num_inputs;
        out.graph(RuleId::RewriteInputs, oss.str());
    }

    auto countOp = [](const Graph &g, OpType op) {
        return g.countIf([op](OpType o) { return o == op; });
    };
    for (OpType op : { OpType::Output, OpType::Store, OpType::Load }) {
        std::size_t na = countOp(before, op);
        std::size_t nb = countOp(after, op);
        if (na != nb) {
            std::ostringstream oss;
            oss << "rewrite changed " << opName(op) << " population from "
                << na << " to " << nb
                << "; effectful nodes must be preserved";
            out.graph(RuleId::RewriteSinks, oss.str());
        }
    }

    if (b.depth < a.depth) {
        std::ostringstream oss;
        oss << "rewrite shortened the critical path from D=" << a.depth
            << " to D=" << b.depth
            << "; mechanical rewrites may not beat the Θ(D) bound";
        out.graph(RuleId::RewriteDepth, oss.str());
    }

    return report;
}

namespace
{

bool &
debugFlag()
{
    static bool enabled = [] {
        if (const char *env = std::getenv("ACCELWALL_VERIFY"))
            return std::string(env) != "0";
#ifndef NDEBUG
        return true;
#else
        return false;
#endif
    }();
    return enabled;
}

} // namespace

bool
debugVerifyEnabled()
{
    return debugFlag();
}

void
setDebugVerify(bool enabled)
{
    debugFlag() = enabled;
}

void
debugVerify(const Graph &graph, const char *where)
{
    if (!debugVerifyEnabled())
        return;
    Report report = verify(graph);
    if (report.ok())
        return;
    std::ostringstream oss;
    oss << where << ": DFG '" << graph.name() << "' failed verification ("
        << report.summary() << ")";
    std::size_t shown = 0;
    for (const Diagnostic &d : report.diagnostics) {
        if (d.severity != Severity::Error)
            continue;
        oss << "\n  " << d.str();
        if (++shown == 10) {
            oss << "\n  ...";
            break;
        }
    }
    panic(oss.str());
}

} // namespace accelwall::dfg::verify
