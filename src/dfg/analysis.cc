#include "dfg/analysis.hh"

#include <algorithm>

#include "util/logging.hh"

namespace accelwall::dfg
{

Analysis
analyze(const Graph &graph)
{
    Analysis out;
    out.num_nodes = graph.numNodes();
    out.num_edges = graph.numEdges();
    if (out.num_nodes == 0)
        fatal("analyze: empty DFG '", graph.name(), "'");

    std::vector<NodeId> order = graph.topoOrder();

    out.stage.assign(out.num_nodes, 0);
    std::vector<double> paths_to(out.num_nodes, 0.0);

    for (NodeId id : order) {
        const auto &preds = graph.preds(id);
        if (preds.empty()) {
            ++out.num_inputs;
            out.stage[id] = 0;
            paths_to[id] = 1.0;
        } else {
            std::size_t max_stage = 0;
            double paths = 0.0;
            for (NodeId p : preds) {
                max_stage = std::max(max_stage, out.stage[p] + 1);
                paths += paths_to[p];
            }
            out.stage[id] = max_stage;
            paths_to[id] = paths;
        }
    }

    for (NodeId id = 0; id < out.num_nodes; ++id) {
        if (graph.succs(id).empty()) {
            ++out.num_outputs;
            out.num_paths += paths_to[id];
        }
        // V_CMP per the paper: vertices with both incoming and outgoing
        // edges. (An isolated vertex counts as input *and* output, so
        // |V| - |V_IN| - |V_OUT| would be wrong in that degenerate case.)
        if (!graph.preds(id).empty() && !graph.succs(id).empty())
            ++out.num_compute;
    }

    std::size_t max_stage = 0;
    for (NodeId id = 0; id < out.num_nodes; ++id)
        max_stage = std::max(max_stage, out.stage[id]);
    // Depth counts vertices along the longest path, not edges.
    out.depth = max_stage + 1;

    out.stage_sizes.assign(max_stage + 1, 0);
    for (NodeId id = 0; id < out.num_nodes; ++id)
        ++out.stage_sizes[out.stage[id]];
    out.max_working_set =
        *std::max_element(out.stage_sizes.begin(), out.stage_sizes.end());

    return out;
}

} // namespace accelwall::dfg
