/**
 * @file
 * Rule-based DFG verifier and model-integrity diagnostics.
 *
 * Every Section V/VI result rests on the dataflow graphs being
 * well-formed: the Table II bounds read |V|, |E|, D, and max|WS| off
 * the graph, the Aladdin-style simulator schedules it, and the dfgopt
 * rewrites transform it. A silently malformed DFG — a cycle, a node
 * with the wrong operand count, a dead subgraph — corrupts every
 * downstream CSR number without any visible failure. This module
 * machine-checks those invariants and reports violations as structured
 * diagnostics (rule ID, severity, offending node/edge, graph
 * provenance), the same contract a compiler's IR verifier provides.
 *
 * Three entry points:
 *  - verify():        all single-graph rules (V001..V014);
 *  - verifyRewrite(): before/after semantic-preservation rules for the
 *                     dfgopt rewrites (R001..R003);
 *  - debugVerify():   a cheap hook for hot paths — no-op unless the
 *                     ACCELWALL_VERIFY environment variable is set (or
 *                     the build is !NDEBUG), panic() on errors.
 */

#ifndef ACCELWALL_DFG_VERIFY_HH
#define ACCELWALL_DFG_VERIFY_HH

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dfg/graph.hh"

namespace accelwall::dfg::verify
{

/** Identity of one verification rule. */
enum class RuleId
{
    // Single-graph structural rules.
    EmptyGraph,         ///< V001: graph has no nodes
    Cycle,              ///< V002: not acyclic (includes self edges)
    DanglingEdge,       ///< V003: edge endpoint is not a node
    EdgeMirror,         ///< V004: preds/succs adjacency views disagree
    DuplicateEdge,      ///< V005: same (from,to) edge appears twice
    ArityMismatch,      ///< V006: operand count outside the op's range
    VariablePlacement,  ///< V007: Input has preds / Output has succs
    TypeMismatch,       ///< V008: int-domain op feeds float-domain op
    WidthNarrowing,     ///< V009: node narrower than its operands
    WidthImbalance,     ///< V010: width-strict op with unequal operands
    MemoryAddressing,   ///< V011: Load/Store addressing invariant broken
    UnreachableNode,    ///< V012: not reachable from any Input/root Load
    DeadNode,           ///< V013: no effectful sink (Output/Store/Load)
    BoundConsistency,   ///< V014: Table II bound cross-check failed

    // Rewrite (before/after) semantic-preservation rules.
    RewriteInputs,      ///< R001: rewrite changed |V_IN|
    RewriteSinks,       ///< R002: rewrite changed Output/Store/Load count
    RewriteDepth,       ///< R003: rewrite beat the Θ(D) dependence bound
    RewriteAccounting,  ///< R004: op-count accounting mismatch
};

/** Total number of RuleId values (for dense per-rule tables). */
inline constexpr int kNumRules =
    static_cast<int>(RuleId::RewriteAccounting) + 1;

/** Diagnostic severity; only Error fails verification. */
enum class Severity
{
    Note,
    Warning,
    Error,
};

/** Stable short code, e.g. "V006". */
const char *ruleCode(RuleId rule);

/** Kebab-case rule name, e.g. "arity-mismatch". */
const char *ruleName(RuleId rule);

/** Lower-case severity name, e.g. "error". */
const char *severityName(Severity severity);

/** The built-in severity a rule fires at. */
Severity defaultSeverity(RuleId rule);

/** One rule violation, locatable to a node or edge. */
struct Diagnostic
{
    RuleId rule = RuleId::EmptyGraph;
    Severity severity = Severity::Error;
    /** Graph provenance (the kernel or rewrite-output name). */
    std::string graph;
    /** Offending node, when the rule localizes to one. */
    std::optional<NodeId> node;
    /** Offending edge, when the rule localizes to one. */
    std::optional<std::pair<NodeId, NodeId>> edge;
    /** Human-readable explanation with concrete values. */
    std::string message;

    /** One-line rendering: "GRAPH: error V006 arity-mismatch ...". */
    std::string str() const;
};

/** Knobs for one verification run. */
struct Options
{
    /** Cross-check dfg::analyze against concepts/bounds.hh (V014). */
    bool check_bounds = true;
    /** Escalate Warning diagnostics to Error. */
    bool warnings_as_errors = false;
    /** Keep at most this many diagnostics; the rest are counted. */
    std::size_t max_diagnostics = 256;
};

/** Outcome of one verification run. */
struct Report
{
    std::vector<Diagnostic> diagnostics;
    std::size_t num_errors = 0;
    std::size_t num_warnings = 0;
    std::size_t num_notes = 0;
    /** Diagnostics dropped beyond Options::max_diagnostics. */
    std::size_t suppressed = 0;

    /** True when no Error-severity diagnostics fired. */
    bool ok() const { return num_errors == 0; }

    /** True when a rule with this id fired (at any severity). */
    bool fired(RuleId rule) const;

    /** "3 errors, 1 warning, 0 notes". */
    std::string summary() const;

    /** Append another report's diagnostics and counts. */
    void merge(const Report &other);
};

/**
 * Edge-list form of a graph the verifier can check without the Graph
 * class's construction-time guards. Tests (and external importers) use
 * this to seed deliberately broken structures — dangling edges, self
 * edges — that Graph::addEdge would reject at build time.
 */
struct RawGraph
{
    std::string name;
    std::vector<OpType> ops;
    /** Per-node value width in bits; empty means all kDefaultWidth. */
    std::vector<int> widths;
    std::vector<std::pair<NodeId, NodeId>> edges;
};

/** Snapshot a Graph into the edge-list form. */
RawGraph rawFrom(const Graph &graph);

/** Run every single-graph rule against an edge-list graph. */
Report verify(const RawGraph &graph, const Options &options = {});

/**
 * Run every single-graph rule against @p graph, plus the EdgeMirror
 * consistency check between its preds/succs adjacency views.
 */
Report verify(const Graph &graph, const Options &options = {});

/**
 * Check that a dfgopt rewrite mapped a verified graph to a verified
 * graph without changing what the computation reads or writes: same
 * |V_IN| (R001), same Output/Store/Load populations (R002), and a
 * critical path no shorter than before (R003) — a mechanical rewrite
 * that beats the Θ(D) dependence bound of Table II has almost
 * certainly broken semantics. Runs verify(after) first and folds its
 * diagnostics into the returned report.
 */
Report verifyRewrite(const Graph &before, const Graph &after,
                     const Options &options = {});

/**
 * True when debugVerify() actually verifies: set by ACCELWALL_VERIFY
 * (any value but "0"), by !NDEBUG builds, or by setDebugVerify().
 */
bool debugVerifyEnabled();

/** Force the debugVerify() gate on or off (tests and tools). */
void setDebugVerify(bool enabled);

/**
 * Fail-fast hook for graph producers and consumers: when enabled,
 * verify @p graph and panic() listing the diagnostics if any rule
 * fires at Error severity. @p where names the call site.
 */
void debugVerify(const Graph &graph, const char *where);

} // namespace accelwall::dfg::verify

#endif // ACCELWALL_DFG_VERIFY_HH
