/**
 * @file
 * Structural DFG analysis implementing Section V-B's definitions:
 * input/output/computation node sets, computation paths, DFG depth D, and
 * per-stage working sets WS_s. These quantities parameterize the concept
 * complexity bounds of Table II.
 */

#ifndef ACCELWALL_DFG_ANALYSIS_HH
#define ACCELWALL_DFG_ANALYSIS_HH

#include <cstddef>
#include <vector>

#include "dfg/graph.hh"

namespace accelwall::dfg
{

/** Computed structural properties of a DFG. */
struct Analysis
{
    /** |V|. */
    std::size_t num_nodes = 0;
    /** |E|. */
    std::size_t num_edges = 0;
    /** |V_IN|: vertices with no incoming edges. */
    std::size_t num_inputs = 0;
    /** |V_OUT|: vertices with no outgoing edges. */
    std::size_t num_outputs = 0;
    /** |V_CMP|: vertices that are neither inputs nor outputs. */
    std::size_t num_compute = 0;

    /**
     * DFG depth D: the length (in vertices) of the longest computation
     * path from an input to an output.
     */
    std::size_t depth = 0;

    /**
     * Per-node ASAP stage: the 0-based position of the node along its
     * longest incoming path. Inputs occupy stage 0.
     */
    std::vector<std::size_t> stage;

    /** Number of variables computed in each stage (|WS_s|). */
    std::vector<std::size_t> stage_sizes;

    /** max_s |WS_s|: the largest working set, bounding partitioning. */
    std::size_t max_working_set = 0;

    /**
     * Number of computation paths |P| (input-to-output routes), computed
     * by DP in double precision since path counts grow combinatorially.
     */
    double num_paths = 0.0;
};

/**
 * Analyze @p graph. fatal() on a cyclic graph.
 */
Analysis analyze(const Graph &graph);

} // namespace accelwall::dfg

#endif // ACCELWALL_DFG_ANALYSIS_HH
