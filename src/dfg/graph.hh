/**
 * @file
 * Dataflow graph (Section V-B, Figure 11).
 *
 * "The DFG is a directed-acyclic graph G(V,E) ... a concise representation
 * of computation problems, limited solely by inherent computation
 * restrictions (e.g., data dependencies), and not by implementation
 * mediums."
 */

#ifndef ACCELWALL_DFG_GRAPH_HH
#define ACCELWALL_DFG_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/op_type.hh"

namespace accelwall::dfg
{

/** Dense node identifier within one Graph. */
using NodeId = std::uint32_t;

/** Datapath width assumed when a node does not declare one, bits. */
inline constexpr int kDefaultWidth = 32;

/**
 * A directed acyclic dataflow graph. Nodes are appended and edges added
 * between existing nodes; topoOrder() verifies acyclicity.
 */
class Graph
{
  public:
    /** Construct an empty graph with a display name. */
    explicit Graph(std::string name);

    /** Append a node of the given operation type; returns its id. */
    NodeId addNode(OpType op);

    /** Append a node with an explicit value width in bits. */
    NodeId addNode(OpType op, int width_bits);

    /** Declare the value width of @p id in bits. */
    void setWidth(NodeId id, int width_bits);

    /** Value width of @p id in bits (kDefaultWidth unless declared). */
    int width(NodeId id) const;

    /**
     * Add a dependence edge from producer @p from to consumer @p to.
     * Self-edges are rejected; duplicate edges are allowed by the
     * representation but kernels avoid them.
     */
    void addEdge(NodeId from, NodeId to);

    /** Number of vertices |V|. */
    std::size_t numNodes() const { return ops_.size(); }

    /** Number of edges |E|. */
    std::size_t numEdges() const { return num_edges_; }

    /** Operation type of @p id. */
    OpType op(NodeId id) const;

    /** Producers feeding @p id. */
    const std::vector<NodeId> &preds(NodeId id) const;

    /** Consumers of @p id. */
    const std::vector<NodeId> &succs(NodeId id) const;

    /** Vertices with no incoming edges (V_IN, including Load roots). */
    std::vector<NodeId> sources() const;

    /** Vertices with no outgoing edges (V_OUT, including Store sinks). */
    std::vector<NodeId> sinks() const;

    /**
     * A topological ordering of all nodes; fatal() if the graph contains
     * a cycle (i.e. is not a valid DFG).
     */
    std::vector<NodeId> topoOrder() const;

    /** Count nodes matching a predicate over OpType. */
    template <typename Pred>
    std::size_t
    countIf(Pred pred) const
    {
        std::size_t n = 0;
        for (OpType op : ops_) {
            if (pred(op))
                ++n;
        }
        return n;
    }

    /** Display name. */
    const std::string &name() const { return name_; }

  private:
    void checkId(NodeId id) const;

    std::string name_;
    std::vector<OpType> ops_;
    std::vector<int> widths_;
    std::vector<std::vector<NodeId>> preds_;
    std::vector<std::vector<NodeId>> succs_;
    std::size_t num_edges_ = 0;
};

/**
 * Build the paper's Figure 11 example DFG: three inputs, two computation
 * stages (+, /, then +, -), two outputs.
 */
Graph makeFigure11Example();

} // namespace accelwall::dfg

#endif // ACCELWALL_DFG_GRAPH_HH
