/**
 * @file
 * Operation vocabulary for DFG nodes.
 *
 * The paper's DFG formalism (Section V-B) distinguishes input variables,
 * output variables, and computation nodes; our accelerator model further
 * needs each computation node's operation class to cost it (Section VI).
 */

#ifndef ACCELWALL_DFG_OP_TYPE_HH
#define ACCELWALL_DFG_OP_TYPE_HH

namespace accelwall::dfg
{

/** Operation performed by a DFG node. */
enum class OpType
{
    /** Input variable (V_IN): no incoming edges. */
    Input,
    /** Output variable (V_OUT): no outgoing edges. */
    Output,

    // Integer / logic compute nodes.
    Add,
    Sub,
    Mul,
    Div,
    Cmp,
    And,
    Or,
    Xor,
    Shift,
    Select,
    Max,
    Min,

    // Floating-point compute nodes.
    FAdd,
    FSub,
    FMul,
    FDiv,
    Sqrt,
    Exp,

    // Memory access nodes.
    Load,
    Store,

    /** Table lookup (e.g. AES S-box). */
    Lut,
};

/** Total number of OpType values (for dense per-op tables). */
inline constexpr int kNumOpTypes = static_cast<int>(OpType::Lut) + 1;

/** Short mnemonic, e.g. "fmul". */
const char *opName(OpType op);

/** True for Load/Store. */
bool isMemory(OpType op);

/** True for Input/Output pseudo-nodes. */
bool isVariable(OpType op);

/** True for genuine computation nodes (neither variable nor memory). */
bool isCompute(OpType op);

} // namespace accelwall::dfg

#endif // ACCELWALL_DFG_OP_TYPE_HH
