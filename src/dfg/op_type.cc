#include "dfg/op_type.hh"

namespace accelwall::dfg
{

const char *
opName(OpType op)
{
    switch (op) {
      case OpType::Input: return "input";
      case OpType::Output: return "output";
      case OpType::Add: return "add";
      case OpType::Sub: return "sub";
      case OpType::Mul: return "mul";
      case OpType::Div: return "div";
      case OpType::Cmp: return "cmp";
      case OpType::And: return "and";
      case OpType::Or: return "or";
      case OpType::Xor: return "xor";
      case OpType::Shift: return "shift";
      case OpType::Select: return "select";
      case OpType::Max: return "max";
      case OpType::Min: return "min";
      case OpType::FAdd: return "fadd";
      case OpType::FSub: return "fsub";
      case OpType::FMul: return "fmul";
      case OpType::FDiv: return "fdiv";
      case OpType::Sqrt: return "sqrt";
      case OpType::Exp: return "exp";
      case OpType::Load: return "load";
      case OpType::Store: return "store";
      case OpType::Lut: return "lut";
    }
    return "?";
}

bool
isMemory(OpType op)
{
    return op == OpType::Load || op == OpType::Store;
}

bool
isVariable(OpType op)
{
    return op == OpType::Input || op == OpType::Output;
}

bool
isCompute(OpType op)
{
    return !isMemory(op) && !isVariable(op);
}

} // namespace accelwall::dfg
