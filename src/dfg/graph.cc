#include "dfg/graph.hh"

#include <queue>

#include "util/logging.hh"

namespace accelwall::dfg
{

Graph::Graph(std::string name)
    : name_(std::move(name))
{
}

NodeId
Graph::addNode(OpType op)
{
    return addNode(op, kDefaultWidth);
}

NodeId
Graph::addNode(OpType op, int width_bits)
{
    if (width_bits < 1)
        fatal("DFG '", name_, "': node width must be >= 1 bit, got ",
              width_bits);
    NodeId id = static_cast<NodeId>(ops_.size());
    ops_.push_back(op);
    widths_.push_back(width_bits);
    preds_.emplace_back();
    succs_.emplace_back();
    return id;
}

void
Graph::setWidth(NodeId id, int width_bits)
{
    checkId(id);
    if (width_bits < 1)
        fatal("DFG '", name_, "': node width must be >= 1 bit, got ",
              width_bits);
    widths_[id] = width_bits;
}

int
Graph::width(NodeId id) const
{
    checkId(id);
    return widths_[id];
}

void
Graph::checkId(NodeId id) const
{
    if (id >= ops_.size())
        fatal("DFG '", name_, "': node id ", id, " out of range");
}

void
Graph::addEdge(NodeId from, NodeId to)
{
    checkId(from);
    checkId(to);
    if (from == to)
        fatal("DFG '", name_, "': self edge on node ", from);
    succs_[from].push_back(to);
    preds_[to].push_back(from);
    ++num_edges_;
}

OpType
Graph::op(NodeId id) const
{
    checkId(id);
    return ops_[id];
}

const std::vector<NodeId> &
Graph::preds(NodeId id) const
{
    checkId(id);
    return preds_[id];
}

const std::vector<NodeId> &
Graph::succs(NodeId id) const
{
    checkId(id);
    return succs_[id];
}

std::vector<NodeId>
Graph::sources() const
{
    std::vector<NodeId> out;
    for (NodeId id = 0; id < ops_.size(); ++id) {
        if (preds_[id].empty())
            out.push_back(id);
    }
    return out;
}

std::vector<NodeId>
Graph::sinks() const
{
    std::vector<NodeId> out;
    for (NodeId id = 0; id < ops_.size(); ++id) {
        if (succs_[id].empty())
            out.push_back(id);
    }
    return out;
}

std::vector<NodeId>
Graph::topoOrder() const
{
    std::vector<std::size_t> in_degree(ops_.size());
    for (NodeId id = 0; id < ops_.size(); ++id)
        in_degree[id] = preds_[id].size();

    std::queue<NodeId> ready;
    for (NodeId id = 0; id < ops_.size(); ++id) {
        if (in_degree[id] == 0)
            ready.push(id);
    }

    std::vector<NodeId> order;
    order.reserve(ops_.size());
    while (!ready.empty()) {
        NodeId id = ready.front();
        ready.pop();
        order.push_back(id);
        for (NodeId succ : succs_[id]) {
            if (--in_degree[succ] == 0)
                ready.push(succ);
        }
    }

    if (order.size() != ops_.size())
        fatal("DFG '", name_, "' contains a cycle");
    return order;
}

Graph
makeFigure11Example()
{
    // Figure 11: D_IN1..3 feed a (+) and a (/) in stage 1; stage 2 holds
    // a (+) and a (-) producing D_OUT1..2. The red example computation
    // path is D_IN1 -> (+) -> (-) -> D_OUT2.
    Graph g("figure11");
    NodeId in1 = g.addNode(OpType::Input);
    NodeId in2 = g.addNode(OpType::Input);
    NodeId in3 = g.addNode(OpType::Input);
    NodeId add1 = g.addNode(OpType::Add);
    NodeId div1 = g.addNode(OpType::Div);
    NodeId add2 = g.addNode(OpType::Add);
    NodeId sub2 = g.addNode(OpType::Sub);
    NodeId out1 = g.addNode(OpType::Output);
    NodeId out2 = g.addNode(OpType::Output);

    g.addEdge(in1, add1);
    g.addEdge(in2, add1);
    g.addEdge(in2, div1);
    g.addEdge(in3, div1);
    g.addEdge(add1, add2);
    g.addEdge(div1, add2);
    g.addEdge(add1, sub2);
    g.addEdge(div1, sub2);
    g.addEdge(add2, out1);
    g.addEdge(sub2, out2);
    return g;
}

} // namespace accelwall::dfg
