file(REMOVE_RECURSE
  "CMakeFiles/accelwall-report.dir/accelwall_report.cc.o"
  "CMakeFiles/accelwall-report.dir/accelwall_report.cc.o.d"
  "accelwall-report"
  "accelwall-report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall-report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
