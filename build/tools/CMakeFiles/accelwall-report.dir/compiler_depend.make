# Empty compiler generated dependencies file for accelwall-report.
# This may be replaced when dependencies are built.
