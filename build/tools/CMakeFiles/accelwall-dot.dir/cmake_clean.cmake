file(REMOVE_RECURSE
  "CMakeFiles/accelwall-dot.dir/accelwall_dot.cc.o"
  "CMakeFiles/accelwall-dot.dir/accelwall_dot.cc.o.d"
  "accelwall-dot"
  "accelwall-dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall-dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
