# Empty compiler generated dependencies file for accelwall-dot.
# This may be replaced when dependencies are built.
