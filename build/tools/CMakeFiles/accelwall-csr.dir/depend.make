# Empty dependencies file for accelwall-csr.
# This may be replaced when dependencies are built.
