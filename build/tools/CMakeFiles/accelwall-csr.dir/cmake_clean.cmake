file(REMOVE_RECURSE
  "CMakeFiles/accelwall-csr.dir/accelwall_csr.cc.o"
  "CMakeFiles/accelwall-csr.dir/accelwall_csr.cc.o.d"
  "accelwall-csr"
  "accelwall-csr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall-csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
