file(REMOVE_RECURSE
  "CMakeFiles/accelwall-export.dir/accelwall_export.cc.o"
  "CMakeFiles/accelwall-export.dir/accelwall_export.cc.o.d"
  "accelwall-export"
  "accelwall-export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall-export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
