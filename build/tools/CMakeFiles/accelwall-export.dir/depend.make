# Empty dependencies file for accelwall-export.
# This may be replaced when dependencies are built.
