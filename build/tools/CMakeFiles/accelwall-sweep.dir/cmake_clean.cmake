file(REMOVE_RECURSE
  "CMakeFiles/accelwall-sweep.dir/accelwall_sweep.cc.o"
  "CMakeFiles/accelwall-sweep.dir/accelwall_sweep.cc.o.d"
  "accelwall-sweep"
  "accelwall-sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall-sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
