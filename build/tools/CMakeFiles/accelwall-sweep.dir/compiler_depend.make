# Empty compiler generated dependencies file for accelwall-sweep.
# This may be replaced when dependencies are built.
