file(REMOVE_RECURSE
  "CMakeFiles/mining_eras.dir/mining_eras.cpp.o"
  "CMakeFiles/mining_eras.dir/mining_eras.cpp.o.d"
  "mining_eras"
  "mining_eras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_eras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
