# Empty compiler generated dependencies file for mining_eras.
# This may be replaced when dependencies are built.
