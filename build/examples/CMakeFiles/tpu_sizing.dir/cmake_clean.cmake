file(REMOVE_RECURSE
  "CMakeFiles/tpu_sizing.dir/tpu_sizing.cpp.o"
  "CMakeFiles/tpu_sizing.dir/tpu_sizing.cpp.o.d"
  "tpu_sizing"
  "tpu_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpu_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
