# Empty compiler generated dependencies file for tpu_sizing.
# This may be replaced when dependencies are built.
