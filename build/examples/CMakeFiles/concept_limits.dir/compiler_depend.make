# Empty compiler generated dependencies file for concept_limits.
# This may be replaced when dependencies are built.
