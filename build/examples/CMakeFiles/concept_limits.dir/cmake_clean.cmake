file(REMOVE_RECURSE
  "CMakeFiles/concept_limits.dir/concept_limits.cpp.o"
  "CMakeFiles/concept_limits.dir/concept_limits.cpp.o.d"
  "concept_limits"
  "concept_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concept_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
