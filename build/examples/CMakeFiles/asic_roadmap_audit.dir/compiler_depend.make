# Empty compiler generated dependencies file for asic_roadmap_audit.
# This may be replaced when dependencies are built.
