file(REMOVE_RECURSE
  "CMakeFiles/asic_roadmap_audit.dir/asic_roadmap_audit.cpp.o"
  "CMakeFiles/asic_roadmap_audit.dir/asic_roadmap_audit.cpp.o.d"
  "asic_roadmap_audit"
  "asic_roadmap_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asic_roadmap_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
