file(REMOVE_RECURSE
  "CMakeFiles/accelwall_plot.dir/ascii_chart.cc.o"
  "CMakeFiles/accelwall_plot.dir/ascii_chart.cc.o.d"
  "libaccelwall_plot.a"
  "libaccelwall_plot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
