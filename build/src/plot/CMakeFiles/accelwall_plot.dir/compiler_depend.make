# Empty compiler generated dependencies file for accelwall_plot.
# This may be replaced when dependencies are built.
