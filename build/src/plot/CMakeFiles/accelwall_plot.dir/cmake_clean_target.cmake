file(REMOVE_RECURSE
  "libaccelwall_plot.a"
)
