# Empty dependencies file for accelwall_projection.
# This may be replaced when dependencies are built.
