file(REMOVE_RECURSE
  "libaccelwall_projection.a"
)
