file(REMOVE_RECURSE
  "CMakeFiles/accelwall_projection.dir/domains.cc.o"
  "CMakeFiles/accelwall_projection.dir/domains.cc.o.d"
  "CMakeFiles/accelwall_projection.dir/projection.cc.o"
  "CMakeFiles/accelwall_projection.dir/projection.cc.o.d"
  "libaccelwall_projection.a"
  "libaccelwall_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
