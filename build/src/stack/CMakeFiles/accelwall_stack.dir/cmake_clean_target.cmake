file(REMOVE_RECURSE
  "libaccelwall_stack.a"
)
