file(REMOVE_RECURSE
  "CMakeFiles/accelwall_stack.dir/stack.cc.o"
  "CMakeFiles/accelwall_stack.dir/stack.cc.o.d"
  "libaccelwall_stack.a"
  "libaccelwall_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
