# Empty dependencies file for accelwall_stack.
# This may be replaced when dependencies are built.
