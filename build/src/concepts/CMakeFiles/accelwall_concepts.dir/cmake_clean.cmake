file(REMOVE_RECURSE
  "CMakeFiles/accelwall_concepts.dir/bounds.cc.o"
  "CMakeFiles/accelwall_concepts.dir/bounds.cc.o.d"
  "libaccelwall_concepts.a"
  "libaccelwall_concepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_concepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
