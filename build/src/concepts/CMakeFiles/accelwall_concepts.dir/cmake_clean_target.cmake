file(REMOVE_RECURSE
  "libaccelwall_concepts.a"
)
