# Empty dependencies file for accelwall_concepts.
# This may be replaced when dependencies are built.
