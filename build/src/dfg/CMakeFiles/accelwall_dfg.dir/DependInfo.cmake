
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfg/analysis.cc" "src/dfg/CMakeFiles/accelwall_dfg.dir/analysis.cc.o" "gcc" "src/dfg/CMakeFiles/accelwall_dfg.dir/analysis.cc.o.d"
  "/root/repo/src/dfg/dot.cc" "src/dfg/CMakeFiles/accelwall_dfg.dir/dot.cc.o" "gcc" "src/dfg/CMakeFiles/accelwall_dfg.dir/dot.cc.o.d"
  "/root/repo/src/dfg/graph.cc" "src/dfg/CMakeFiles/accelwall_dfg.dir/graph.cc.o" "gcc" "src/dfg/CMakeFiles/accelwall_dfg.dir/graph.cc.o.d"
  "/root/repo/src/dfg/op_type.cc" "src/dfg/CMakeFiles/accelwall_dfg.dir/op_type.cc.o" "gcc" "src/dfg/CMakeFiles/accelwall_dfg.dir/op_type.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/accelwall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
