file(REMOVE_RECURSE
  "CMakeFiles/accelwall_dfg.dir/analysis.cc.o"
  "CMakeFiles/accelwall_dfg.dir/analysis.cc.o.d"
  "CMakeFiles/accelwall_dfg.dir/dot.cc.o"
  "CMakeFiles/accelwall_dfg.dir/dot.cc.o.d"
  "CMakeFiles/accelwall_dfg.dir/graph.cc.o"
  "CMakeFiles/accelwall_dfg.dir/graph.cc.o.d"
  "CMakeFiles/accelwall_dfg.dir/op_type.cc.o"
  "CMakeFiles/accelwall_dfg.dir/op_type.cc.o.d"
  "libaccelwall_dfg.a"
  "libaccelwall_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
