file(REMOVE_RECURSE
  "libaccelwall_dfg.a"
)
