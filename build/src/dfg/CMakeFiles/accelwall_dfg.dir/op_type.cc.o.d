src/dfg/CMakeFiles/accelwall_dfg.dir/op_type.cc.o: \
 /root/repo/src/dfg/op_type.cc /usr/include/stdc-predef.h \
 /root/repo/src/dfg/op_type.hh
