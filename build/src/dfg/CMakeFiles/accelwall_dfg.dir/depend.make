# Empty dependencies file for accelwall_dfg.
# This may be replaced when dependencies are built.
