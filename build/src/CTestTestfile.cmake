# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("stats")
subdirs("cmos")
subdirs("chipdb")
subdirs("potential")
subdirs("csr")
subdirs("dfg")
subdirs("concepts")
subdirs("aladdin")
subdirs("kernels")
subdirs("studies")
subdirs("projection")
subdirs("plot")
subdirs("roofline")
subdirs("dfgopt")
subdirs("economics")
subdirs("stack")
subdirs("crypto")
subdirs("nn")
subdirs("tpu")
