
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/aes.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/aes.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/aes.cc.o.d"
  "/root/repo/src/kernels/bfs.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/bfs.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/bfs.cc.o.d"
  "/root/repo/src/kernels/btc.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/btc.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/btc.cc.o.d"
  "/root/repo/src/kernels/builder.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/builder.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/builder.cc.o.d"
  "/root/repo/src/kernels/dft.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/dft.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/dft.cc.o.d"
  "/root/repo/src/kernels/fft.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/fft.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/fft.cc.o.d"
  "/root/repo/src/kernels/gmm.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/gmm.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/gmm.cc.o.d"
  "/root/repo/src/kernels/knn.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/knn.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/knn.cc.o.d"
  "/root/repo/src/kernels/mdy.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/mdy.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/mdy.cc.o.d"
  "/root/repo/src/kernels/nwn.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/nwn.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/nwn.cc.o.d"
  "/root/repo/src/kernels/rbm.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/rbm.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/rbm.cc.o.d"
  "/root/repo/src/kernels/red.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/red.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/red.cc.o.d"
  "/root/repo/src/kernels/registry.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/registry.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/registry.cc.o.d"
  "/root/repo/src/kernels/s2d.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/s2d.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/s2d.cc.o.d"
  "/root/repo/src/kernels/s3d.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/s3d.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/s3d.cc.o.d"
  "/root/repo/src/kernels/sad.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/sad.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/sad.cc.o.d"
  "/root/repo/src/kernels/smv.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/smv.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/smv.cc.o.d"
  "/root/repo/src/kernels/srt.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/srt.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/srt.cc.o.d"
  "/root/repo/src/kernels/ssp.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/ssp.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/ssp.cc.o.d"
  "/root/repo/src/kernels/trd.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/trd.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/trd.cc.o.d"
  "/root/repo/src/kernels/video_ext.cc" "src/kernels/CMakeFiles/accelwall_kernels.dir/video_ext.cc.o" "gcc" "src/kernels/CMakeFiles/accelwall_kernels.dir/video_ext.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/accelwall_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/accelwall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
