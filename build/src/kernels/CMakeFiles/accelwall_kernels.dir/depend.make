# Empty dependencies file for accelwall_kernels.
# This may be replaced when dependencies are built.
