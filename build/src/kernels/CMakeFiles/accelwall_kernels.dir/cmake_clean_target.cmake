file(REMOVE_RECURSE
  "libaccelwall_kernels.a"
)
