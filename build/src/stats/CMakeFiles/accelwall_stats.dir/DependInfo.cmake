
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/accelwall_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/accelwall_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/fits.cc" "src/stats/CMakeFiles/accelwall_stats.dir/fits.cc.o" "gcc" "src/stats/CMakeFiles/accelwall_stats.dir/fits.cc.o.d"
  "/root/repo/src/stats/pareto.cc" "src/stats/CMakeFiles/accelwall_stats.dir/pareto.cc.o" "gcc" "src/stats/CMakeFiles/accelwall_stats.dir/pareto.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/accelwall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
