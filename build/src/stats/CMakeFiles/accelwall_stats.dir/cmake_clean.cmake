file(REMOVE_RECURSE
  "CMakeFiles/accelwall_stats.dir/descriptive.cc.o"
  "CMakeFiles/accelwall_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/accelwall_stats.dir/fits.cc.o"
  "CMakeFiles/accelwall_stats.dir/fits.cc.o.d"
  "CMakeFiles/accelwall_stats.dir/pareto.cc.o"
  "CMakeFiles/accelwall_stats.dir/pareto.cc.o.d"
  "libaccelwall_stats.a"
  "libaccelwall_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
