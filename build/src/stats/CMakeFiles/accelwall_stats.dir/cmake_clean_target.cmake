file(REMOVE_RECURSE
  "libaccelwall_stats.a"
)
