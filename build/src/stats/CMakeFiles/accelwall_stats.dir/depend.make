# Empty dependencies file for accelwall_stats.
# This may be replaced when dependencies are built.
