
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aladdin/attribution.cc" "src/aladdin/CMakeFiles/accelwall_aladdin.dir/attribution.cc.o" "gcc" "src/aladdin/CMakeFiles/accelwall_aladdin.dir/attribution.cc.o.d"
  "/root/repo/src/aladdin/design_point.cc" "src/aladdin/CMakeFiles/accelwall_aladdin.dir/design_point.cc.o" "gcc" "src/aladdin/CMakeFiles/accelwall_aladdin.dir/design_point.cc.o.d"
  "/root/repo/src/aladdin/fu_library.cc" "src/aladdin/CMakeFiles/accelwall_aladdin.dir/fu_library.cc.o" "gcc" "src/aladdin/CMakeFiles/accelwall_aladdin.dir/fu_library.cc.o.d"
  "/root/repo/src/aladdin/simulator.cc" "src/aladdin/CMakeFiles/accelwall_aladdin.dir/simulator.cc.o" "gcc" "src/aladdin/CMakeFiles/accelwall_aladdin.dir/simulator.cc.o.d"
  "/root/repo/src/aladdin/sweep.cc" "src/aladdin/CMakeFiles/accelwall_aladdin.dir/sweep.cc.o" "gcc" "src/aladdin/CMakeFiles/accelwall_aladdin.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/accelwall_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/cmos/CMakeFiles/accelwall_cmos.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/accelwall_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/accelwall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
