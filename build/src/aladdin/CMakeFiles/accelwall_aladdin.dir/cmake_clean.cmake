file(REMOVE_RECURSE
  "CMakeFiles/accelwall_aladdin.dir/attribution.cc.o"
  "CMakeFiles/accelwall_aladdin.dir/attribution.cc.o.d"
  "CMakeFiles/accelwall_aladdin.dir/design_point.cc.o"
  "CMakeFiles/accelwall_aladdin.dir/design_point.cc.o.d"
  "CMakeFiles/accelwall_aladdin.dir/fu_library.cc.o"
  "CMakeFiles/accelwall_aladdin.dir/fu_library.cc.o.d"
  "CMakeFiles/accelwall_aladdin.dir/simulator.cc.o"
  "CMakeFiles/accelwall_aladdin.dir/simulator.cc.o.d"
  "CMakeFiles/accelwall_aladdin.dir/sweep.cc.o"
  "CMakeFiles/accelwall_aladdin.dir/sweep.cc.o.d"
  "libaccelwall_aladdin.a"
  "libaccelwall_aladdin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_aladdin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
