# Empty dependencies file for accelwall_aladdin.
# This may be replaced when dependencies are built.
