file(REMOVE_RECURSE
  "libaccelwall_aladdin.a"
)
