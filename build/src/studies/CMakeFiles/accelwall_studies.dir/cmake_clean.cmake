file(REMOVE_RECURSE
  "CMakeFiles/accelwall_studies.dir/bitcoin.cc.o"
  "CMakeFiles/accelwall_studies.dir/bitcoin.cc.o.d"
  "CMakeFiles/accelwall_studies.dir/fpga.cc.o"
  "CMakeFiles/accelwall_studies.dir/fpga.cc.o.d"
  "CMakeFiles/accelwall_studies.dir/gpu.cc.o"
  "CMakeFiles/accelwall_studies.dir/gpu.cc.o.d"
  "CMakeFiles/accelwall_studies.dir/video.cc.o"
  "CMakeFiles/accelwall_studies.dir/video.cc.o.d"
  "libaccelwall_studies.a"
  "libaccelwall_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
