# Empty compiler generated dependencies file for accelwall_studies.
# This may be replaced when dependencies are built.
