file(REMOVE_RECURSE
  "libaccelwall_studies.a"
)
