file(REMOVE_RECURSE
  "CMakeFiles/accelwall_dfgopt.dir/rewrites.cc.o"
  "CMakeFiles/accelwall_dfgopt.dir/rewrites.cc.o.d"
  "libaccelwall_dfgopt.a"
  "libaccelwall_dfgopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_dfgopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
