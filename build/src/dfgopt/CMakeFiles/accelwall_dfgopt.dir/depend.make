# Empty dependencies file for accelwall_dfgopt.
# This may be replaced when dependencies are built.
