file(REMOVE_RECURSE
  "libaccelwall_dfgopt.a"
)
