file(REMOVE_RECURSE
  "CMakeFiles/accelwall_potential.dir/model.cc.o"
  "CMakeFiles/accelwall_potential.dir/model.cc.o.d"
  "libaccelwall_potential.a"
  "libaccelwall_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
