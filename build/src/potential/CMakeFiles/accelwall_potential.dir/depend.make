# Empty dependencies file for accelwall_potential.
# This may be replaced when dependencies are built.
