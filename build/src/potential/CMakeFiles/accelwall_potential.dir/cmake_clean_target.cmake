file(REMOVE_RECURSE
  "libaccelwall_potential.a"
)
