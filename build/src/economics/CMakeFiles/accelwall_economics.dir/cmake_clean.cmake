file(REMOVE_RECURSE
  "CMakeFiles/accelwall_economics.dir/mining_market.cc.o"
  "CMakeFiles/accelwall_economics.dir/mining_market.cc.o.d"
  "libaccelwall_economics.a"
  "libaccelwall_economics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
