# Empty compiler generated dependencies file for accelwall_economics.
# This may be replaced when dependencies are built.
