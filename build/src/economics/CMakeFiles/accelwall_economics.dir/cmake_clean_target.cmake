file(REMOVE_RECURSE
  "libaccelwall_economics.a"
)
