file(REMOVE_RECURSE
  "libaccelwall_roofline.a"
)
