# Empty dependencies file for accelwall_roofline.
# This may be replaced when dependencies are built.
