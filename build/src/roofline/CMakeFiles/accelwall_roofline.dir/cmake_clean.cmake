file(REMOVE_RECURSE
  "CMakeFiles/accelwall_roofline.dir/roofline.cc.o"
  "CMakeFiles/accelwall_roofline.dir/roofline.cc.o.d"
  "libaccelwall_roofline.a"
  "libaccelwall_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
