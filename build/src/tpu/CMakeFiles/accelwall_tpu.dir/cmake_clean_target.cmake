file(REMOVE_RECURSE
  "libaccelwall_tpu.a"
)
