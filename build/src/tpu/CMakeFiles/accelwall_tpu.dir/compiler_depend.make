# Empty compiler generated dependencies file for accelwall_tpu.
# This may be replaced when dependencies are built.
