
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpu/tpu_model.cc" "src/tpu/CMakeFiles/accelwall_tpu.dir/tpu_model.cc.o" "gcc" "src/tpu/CMakeFiles/accelwall_tpu.dir/tpu_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/accelwall_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/cmos/CMakeFiles/accelwall_cmos.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/accelwall_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/accelwall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
