file(REMOVE_RECURSE
  "CMakeFiles/accelwall_tpu.dir/tpu_model.cc.o"
  "CMakeFiles/accelwall_tpu.dir/tpu_model.cc.o.d"
  "libaccelwall_tpu.a"
  "libaccelwall_tpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_tpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
