file(REMOVE_RECURSE
  "libaccelwall_cmos.a"
)
