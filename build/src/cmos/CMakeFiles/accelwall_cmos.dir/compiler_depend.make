# Empty compiler generated dependencies file for accelwall_cmos.
# This may be replaced when dependencies are built.
