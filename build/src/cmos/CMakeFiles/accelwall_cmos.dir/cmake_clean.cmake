file(REMOVE_RECURSE
  "CMakeFiles/accelwall_cmos.dir/scaling.cc.o"
  "CMakeFiles/accelwall_cmos.dir/scaling.cc.o.d"
  "libaccelwall_cmos.a"
  "libaccelwall_cmos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_cmos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
