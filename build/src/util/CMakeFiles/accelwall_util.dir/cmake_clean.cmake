file(REMOVE_RECURSE
  "CMakeFiles/accelwall_util.dir/csv.cc.o"
  "CMakeFiles/accelwall_util.dir/csv.cc.o.d"
  "CMakeFiles/accelwall_util.dir/format.cc.o"
  "CMakeFiles/accelwall_util.dir/format.cc.o.d"
  "CMakeFiles/accelwall_util.dir/logging.cc.o"
  "CMakeFiles/accelwall_util.dir/logging.cc.o.d"
  "CMakeFiles/accelwall_util.dir/rng.cc.o"
  "CMakeFiles/accelwall_util.dir/rng.cc.o.d"
  "CMakeFiles/accelwall_util.dir/table.cc.o"
  "CMakeFiles/accelwall_util.dir/table.cc.o.d"
  "libaccelwall_util.a"
  "libaccelwall_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
