file(REMOVE_RECURSE
  "libaccelwall_util.a"
)
