# Empty dependencies file for accelwall_util.
# This may be replaced when dependencies are built.
