file(REMOVE_RECURSE
  "libaccelwall_csr.a"
)
