# Empty compiler generated dependencies file for accelwall_csr.
# This may be replaced when dependencies are built.
