
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/csr/arch_gains.cc" "src/csr/CMakeFiles/accelwall_csr.dir/arch_gains.cc.o" "gcc" "src/csr/CMakeFiles/accelwall_csr.dir/arch_gains.cc.o.d"
  "/root/repo/src/csr/csr.cc" "src/csr/CMakeFiles/accelwall_csr.dir/csr.cc.o" "gcc" "src/csr/CMakeFiles/accelwall_csr.dir/csr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/potential/CMakeFiles/accelwall_potential.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/accelwall_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/chipdb/CMakeFiles/accelwall_chipdb.dir/DependInfo.cmake"
  "/root/repo/build/src/cmos/CMakeFiles/accelwall_cmos.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/accelwall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
