file(REMOVE_RECURSE
  "CMakeFiles/accelwall_csr.dir/arch_gains.cc.o"
  "CMakeFiles/accelwall_csr.dir/arch_gains.cc.o.d"
  "CMakeFiles/accelwall_csr.dir/csr.cc.o"
  "CMakeFiles/accelwall_csr.dir/csr.cc.o.d"
  "libaccelwall_csr.a"
  "libaccelwall_csr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
