file(REMOVE_RECURSE
  "libaccelwall_chipdb.a"
)
