# Empty dependencies file for accelwall_chipdb.
# This may be replaced when dependencies are built.
