file(REMOVE_RECURSE
  "CMakeFiles/accelwall_chipdb.dir/budget.cc.o"
  "CMakeFiles/accelwall_chipdb.dir/budget.cc.o.d"
  "CMakeFiles/accelwall_chipdb.dir/reference_chips.cc.o"
  "CMakeFiles/accelwall_chipdb.dir/reference_chips.cc.o.d"
  "CMakeFiles/accelwall_chipdb.dir/synth.cc.o"
  "CMakeFiles/accelwall_chipdb.dir/synth.cc.o.d"
  "libaccelwall_chipdb.a"
  "libaccelwall_chipdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_chipdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
