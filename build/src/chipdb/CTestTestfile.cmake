# CMake generated Testfile for 
# Source directory: /root/repo/src/chipdb
# Build directory: /root/repo/build/src/chipdb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
