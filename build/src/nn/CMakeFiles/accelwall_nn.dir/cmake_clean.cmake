file(REMOVE_RECURSE
  "CMakeFiles/accelwall_nn.dir/conv_dfg.cc.o"
  "CMakeFiles/accelwall_nn.dir/conv_dfg.cc.o.d"
  "CMakeFiles/accelwall_nn.dir/layers.cc.o"
  "CMakeFiles/accelwall_nn.dir/layers.cc.o.d"
  "libaccelwall_nn.a"
  "libaccelwall_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
