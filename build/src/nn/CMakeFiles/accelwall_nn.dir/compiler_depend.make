# Empty compiler generated dependencies file for accelwall_nn.
# This may be replaced when dependencies are built.
