file(REMOVE_RECURSE
  "libaccelwall_nn.a"
)
