file(REMOVE_RECURSE
  "libaccelwall_crypto.a"
)
