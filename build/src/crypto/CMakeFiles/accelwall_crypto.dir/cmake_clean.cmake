file(REMOVE_RECURSE
  "CMakeFiles/accelwall_crypto.dir/aes.cc.o"
  "CMakeFiles/accelwall_crypto.dir/aes.cc.o.d"
  "CMakeFiles/accelwall_crypto.dir/sha256.cc.o"
  "CMakeFiles/accelwall_crypto.dir/sha256.cc.o.d"
  "libaccelwall_crypto.a"
  "libaccelwall_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelwall_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
