# Empty dependencies file for accelwall_crypto.
# This may be replaced when dependencies are built.
