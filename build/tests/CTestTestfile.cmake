# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_cmos[1]_include.cmake")
include("/root/repo/build/tests/test_chipdb[1]_include.cmake")
include("/root/repo/build/tests/test_potential[1]_include.cmake")
include("/root/repo/build/tests/test_csr[1]_include.cmake")
include("/root/repo/build/tests/test_dfg[1]_include.cmake")
include("/root/repo/build/tests/test_concepts[1]_include.cmake")
include("/root/repo/build/tests/test_aladdin[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_studies[1]_include.cmake")
include("/root/repo/build/tests/test_projection[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_tpu[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_plot[1]_include.cmake")
include("/root/repo/build/tests/test_roofline[1]_include.cmake")
include("/root/repo/build/tests/test_dfgopt[1]_include.cmake")
include("/root/repo/build/tests/test_economics[1]_include.cmake")
include("/root/repo/build/tests/test_stack[1]_include.cmake")
