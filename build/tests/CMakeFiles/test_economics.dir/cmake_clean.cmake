file(REMOVE_RECURSE
  "CMakeFiles/test_economics.dir/test_economics.cc.o"
  "CMakeFiles/test_economics.dir/test_economics.cc.o.d"
  "test_economics"
  "test_economics.pdb"
  "test_economics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
