# Empty dependencies file for test_dfgopt.
# This may be replaced when dependencies are built.
