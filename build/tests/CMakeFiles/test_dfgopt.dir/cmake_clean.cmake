file(REMOVE_RECURSE
  "CMakeFiles/test_dfgopt.dir/test_dfgopt.cc.o"
  "CMakeFiles/test_dfgopt.dir/test_dfgopt.cc.o.d"
  "test_dfgopt"
  "test_dfgopt.pdb"
  "test_dfgopt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfgopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
