file(REMOVE_RECURSE
  "CMakeFiles/test_concepts.dir/test_concepts.cc.o"
  "CMakeFiles/test_concepts.dir/test_concepts.cc.o.d"
  "test_concepts"
  "test_concepts.pdb"
  "test_concepts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
