# Empty compiler generated dependencies file for test_concepts.
# This may be replaced when dependencies are built.
