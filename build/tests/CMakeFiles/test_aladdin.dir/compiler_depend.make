# Empty compiler generated dependencies file for test_aladdin.
# This may be replaced when dependencies are built.
