file(REMOVE_RECURSE
  "CMakeFiles/test_aladdin.dir/test_aladdin.cc.o"
  "CMakeFiles/test_aladdin.dir/test_aladdin.cc.o.d"
  "test_aladdin"
  "test_aladdin.pdb"
  "test_aladdin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aladdin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
