# Empty compiler generated dependencies file for test_chipdb.
# This may be replaced when dependencies are built.
