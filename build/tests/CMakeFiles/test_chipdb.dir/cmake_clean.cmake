file(REMOVE_RECURSE
  "CMakeFiles/test_chipdb.dir/test_chipdb.cc.o"
  "CMakeFiles/test_chipdb.dir/test_chipdb.cc.o.d"
  "test_chipdb"
  "test_chipdb.pdb"
  "test_chipdb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chipdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
