# Empty compiler generated dependencies file for test_cmos.
# This may be replaced when dependencies are built.
