file(REMOVE_RECURSE
  "CMakeFiles/test_tpu.dir/test_tpu.cc.o"
  "CMakeFiles/test_tpu.dir/test_tpu.cc.o.d"
  "test_tpu"
  "test_tpu.pdb"
  "test_tpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
