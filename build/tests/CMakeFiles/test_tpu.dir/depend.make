# Empty dependencies file for test_tpu.
# This may be replaced when dependencies are built.
