file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03d_chip_gains.dir/bench_fig03d_chip_gains.cc.o"
  "CMakeFiles/bench_fig03d_chip_gains.dir/bench_fig03d_chip_gains.cc.o.d"
  "bench_fig03d_chip_gains"
  "bench_fig03d_chip_gains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03d_chip_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
