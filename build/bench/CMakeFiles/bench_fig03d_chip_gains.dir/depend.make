# Empty dependencies file for bench_fig03d_chip_gains.
# This may be replaced when dependencies are built.
