# Empty dependencies file for bench_fig07_gpu_arch_efficiency.
# This may be replaced when dependencies are built.
