file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_gpu_arch_efficiency.dir/bench_fig07_gpu_arch_efficiency.cc.o"
  "CMakeFiles/bench_fig07_gpu_arch_efficiency.dir/bench_fig07_gpu_arch_efficiency.cc.o.d"
  "bench_fig07_gpu_arch_efficiency"
  "bench_fig07_gpu_arch_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_gpu_arch_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
