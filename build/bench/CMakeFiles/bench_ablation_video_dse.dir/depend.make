# Empty dependencies file for bench_ablation_video_dse.
# This may be replaced when dependencies are built.
