file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_video_dse.dir/bench_ablation_video_dse.cc.o"
  "CMakeFiles/bench_ablation_video_dse.dir/bench_ablation_video_dse.cc.o.d"
  "bench_ablation_video_dse"
  "bench_ablation_video_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_video_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
