# Empty dependencies file for bench_fig06_gpu_arch_throughput.
# This may be replaced when dependencies are built.
