# Empty dependencies file for bench_fig13_stencil_sweep.
# This may be replaced when dependencies are built.
