# Empty dependencies file for bench_ablation_dark_silicon.
# This may be replaced when dependencies are built.
