file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dark_silicon.dir/bench_ablation_dark_silicon.cc.o"
  "CMakeFiles/bench_ablation_dark_silicon.dir/bench_ablation_dark_silicon.cc.o.d"
  "bench_ablation_dark_silicon"
  "bench_ablation_dark_silicon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dark_silicon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
