file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_tpu_concepts.dir/bench_table1_tpu_concepts.cc.o"
  "CMakeFiles/bench_table1_tpu_concepts.dir/bench_table1_tpu_concepts.cc.o.d"
  "bench_table1_tpu_concepts"
  "bench_table1_tpu_concepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tpu_concepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
