# Empty compiler generated dependencies file for bench_table1_tpu_concepts.
# This may be replaced when dependencies are built.
