# Empty dependencies file for bench_ablation_memory_comm.
# This may be replaced when dependencies are built.
