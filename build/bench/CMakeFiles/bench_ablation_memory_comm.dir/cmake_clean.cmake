file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_memory_comm.dir/bench_ablation_memory_comm.cc.o"
  "CMakeFiles/bench_ablation_memory_comm.dir/bench_ablation_memory_comm.cc.o.d"
  "bench_ablation_memory_comm"
  "bench_ablation_memory_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_memory_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
