file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_asicboost.dir/bench_ablation_asicboost.cc.o"
  "CMakeFiles/bench_ablation_asicboost.dir/bench_ablation_asicboost.cc.o.d"
  "bench_ablation_asicboost"
  "bench_ablation_asicboost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_asicboost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
