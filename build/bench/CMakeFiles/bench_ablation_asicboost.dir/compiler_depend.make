# Empty compiler generated dependencies file for bench_ablation_asicboost.
# This may be replaced when dependencies are built.
