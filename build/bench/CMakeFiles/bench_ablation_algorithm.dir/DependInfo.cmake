
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_algorithm.cc" "bench/CMakeFiles/bench_ablation_algorithm.dir/bench_ablation_algorithm.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_algorithm.dir/bench_ablation_algorithm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/concepts/CMakeFiles/accelwall_concepts.dir/DependInfo.cmake"
  "/root/repo/build/src/aladdin/CMakeFiles/accelwall_aladdin.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/accelwall_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/projection/CMakeFiles/accelwall_projection.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/accelwall_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/plot/CMakeFiles/accelwall_plot.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/accelwall_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/tpu/CMakeFiles/accelwall_tpu.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/accelwall_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/dfgopt/CMakeFiles/accelwall_dfgopt.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/accelwall_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/economics/CMakeFiles/accelwall_economics.dir/DependInfo.cmake"
  "/root/repo/build/src/studies/CMakeFiles/accelwall_studies.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/accelwall_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/csr/CMakeFiles/accelwall_csr.dir/DependInfo.cmake"
  "/root/repo/build/src/potential/CMakeFiles/accelwall_potential.dir/DependInfo.cmake"
  "/root/repo/build/src/chipdb/CMakeFiles/accelwall_chipdb.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/accelwall_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cmos/CMakeFiles/accelwall_cmos.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/accelwall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
