# Empty compiler generated dependencies file for bench_fig14_gain_attribution.
# This may be replaced when dependencies are built.
