file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_gain_attribution.dir/bench_fig14_gain_attribution.cc.o"
  "CMakeFiles/bench_fig14_gain_attribution.dir/bench_fig14_gain_attribution.cc.o.d"
  "bench_fig14_gain_attribution"
  "bench_fig14_gain_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_gain_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
