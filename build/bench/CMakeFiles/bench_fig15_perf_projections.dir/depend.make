# Empty dependencies file for bench_fig15_perf_projections.
# This may be replaced when dependencies are built.
