file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_video_decoders.dir/bench_fig04_video_decoders.cc.o"
  "CMakeFiles/bench_fig04_video_decoders.dir/bench_fig04_video_decoders.cc.o.d"
  "bench_fig04_video_decoders"
  "bench_fig04_video_decoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_video_decoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
