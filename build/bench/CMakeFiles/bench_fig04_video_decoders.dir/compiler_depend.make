# Empty compiler generated dependencies file for bench_fig04_video_decoders.
# This may be replaced when dependencies are built.
