# Empty dependencies file for bench_ablation_roofline.
# This may be replaced when dependencies are built.
