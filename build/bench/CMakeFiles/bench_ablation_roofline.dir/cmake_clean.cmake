file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_roofline.dir/bench_ablation_roofline.cc.o"
  "CMakeFiles/bench_ablation_roofline.dir/bench_ablation_roofline.cc.o.d"
  "bench_ablation_roofline"
  "bench_ablation_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
