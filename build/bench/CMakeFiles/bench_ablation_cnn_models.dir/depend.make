# Empty dependencies file for bench_ablation_cnn_models.
# This may be replaced when dependencies are built.
