file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_bitcoin_evolution.dir/bench_fig01_bitcoin_evolution.cc.o"
  "CMakeFiles/bench_fig01_bitcoin_evolution.dir/bench_fig01_bitcoin_evolution.cc.o.d"
  "bench_fig01_bitcoin_evolution"
  "bench_fig01_bitcoin_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_bitcoin_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
