# Empty compiler generated dependencies file for bench_fig01_bitcoin_evolution.
# This may be replaced when dependencies are built.
