file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_simplification.dir/bench_ablation_simplification.cc.o"
  "CMakeFiles/bench_ablation_simplification.dir/bench_ablation_simplification.cc.o.d"
  "bench_ablation_simplification"
  "bench_ablation_simplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_simplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
