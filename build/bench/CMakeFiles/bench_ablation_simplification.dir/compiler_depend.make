# Empty compiler generated dependencies file for bench_ablation_simplification.
# This may be replaced when dependencies are built.
