# Empty compiler generated dependencies file for bench_fig09_bitcoin_platforms.
# This may be replaced when dependencies are built.
