file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_bitcoin_platforms.dir/bench_fig09_bitcoin_platforms.cc.o"
  "CMakeFiles/bench_fig09_bitcoin_platforms.dir/bench_fig09_bitcoin_platforms.cc.o.d"
  "bench_fig09_bitcoin_platforms"
  "bench_fig09_bitcoin_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_bitcoin_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
