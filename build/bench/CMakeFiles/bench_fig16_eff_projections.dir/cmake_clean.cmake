file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_eff_projections.dir/bench_fig16_eff_projections.cc.o"
  "CMakeFiles/bench_fig16_eff_projections.dir/bench_fig16_eff_projections.cc.o.d"
  "bench_fig16_eff_projections"
  "bench_fig16_eff_projections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_eff_projections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
