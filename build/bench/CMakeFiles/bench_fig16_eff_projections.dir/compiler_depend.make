# Empty compiler generated dependencies file for bench_fig16_eff_projections.
# This may be replaced when dependencies are built.
