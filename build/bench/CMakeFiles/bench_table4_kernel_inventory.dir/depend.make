# Empty dependencies file for bench_table4_kernel_inventory.
# This may be replaced when dependencies are built.
