file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_gpu_framerates.dir/bench_fig05_gpu_framerates.cc.o"
  "CMakeFiles/bench_fig05_gpu_framerates.dir/bench_fig05_gpu_framerates.cc.o.d"
  "bench_fig05_gpu_framerates"
  "bench_fig05_gpu_framerates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_gpu_framerates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
