# Empty dependencies file for bench_fig05_gpu_framerates.
# This may be replaced when dependencies are built.
