# Empty compiler generated dependencies file for bench_fig03c_tdp_budget_fit.
# This may be replaced when dependencies are built.
