# Empty dependencies file for bench_fig02_specialization_stack.
# This may be replaced when dependencies are built.
