file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_specialization_stack.dir/bench_fig02_specialization_stack.cc.o"
  "CMakeFiles/bench_fig02_specialization_stack.dir/bench_fig02_specialization_stack.cc.o.d"
  "bench_fig02_specialization_stack"
  "bench_fig02_specialization_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_specialization_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
