# Empty compiler generated dependencies file for bench_insights.
# This may be replaced when dependencies are built.
