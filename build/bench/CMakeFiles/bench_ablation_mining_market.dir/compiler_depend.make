# Empty compiler generated dependencies file for bench_ablation_mining_market.
# This may be replaced when dependencies are built.
