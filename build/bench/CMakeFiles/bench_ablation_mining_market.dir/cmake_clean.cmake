file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mining_market.dir/bench_ablation_mining_market.cc.o"
  "CMakeFiles/bench_ablation_mining_market.dir/bench_ablation_mining_market.cc.o.d"
  "bench_ablation_mining_market"
  "bench_ablation_mining_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mining_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
