file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_fpga_cnn.dir/bench_fig08_fpga_cnn.cc.o"
  "CMakeFiles/bench_fig08_fpga_cnn.dir/bench_fig08_fpga_cnn.cc.o.d"
  "bench_fig08_fpga_cnn"
  "bench_fig08_fpga_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_fpga_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
