# Empty dependencies file for bench_fig08_fpga_cnn.
# This may be replaced when dependencies are built.
