# Empty dependencies file for bench_fig03b_transistor_density_fit.
# This may be replaced when dependencies are built.
