file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03b_transistor_density_fit.dir/bench_fig03b_transistor_density_fit.cc.o"
  "CMakeFiles/bench_fig03b_transistor_density_fit.dir/bench_fig03b_transistor_density_fit.cc.o.d"
  "bench_fig03b_transistor_density_fit"
  "bench_fig03b_transistor_density_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03b_transistor_density_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
