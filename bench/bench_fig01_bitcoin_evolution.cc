/**
 * @file
 * Figure 1: evolution of Bitcoin mining ASIC chips — per-area
 * performance, transistor (physical) performance, and chip
 * specialization return over introduction dates, normalized to the
 * first 130nm ASIC.
 */

#include <iostream>

#include "bench_common.hh"
#include "csr/csr.hh"
#include "plot/ascii_chart.hh"
#include "potential/model.hh"
#include "studies/bitcoin.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main()
{
    bench::banner("Figure 1", "Evolution of Bitcoin mining ASIC chips");
    bench::note("performance (hashes/s/mm2) improved ~510x while "
                "transistor performance improved ~307x, leaving CSR "
                "~1.7x that stopped improving in the last two years.");

    potential::PotentialModel model;
    auto asics = studies::miningAsics();
    auto series =
        csr::csrSeries(studies::miningChipGains(asics, false), model,
                       csr::Metric::AreaThroughput);

    Table t({"Date", "Chip", "Node", "GH/s/mm2", "Performance",
             "Transistor perf", "CSR"});
    for (std::size_t i = 0; i < series.size(); ++i) {
        const auto &chip = asics[i];
        const auto &pt = series[i];
        t.addRow({fmtFixed(chip.year, 1), chip.label,
                  fmtNode(chip.node_nm),
                  fmtFixed(chip.ghs / chip.area_mm2, 3),
                  fmtGain(pt.rel_gain, 1), fmtGain(pt.rel_phy, 1),
                  fmtGain(pt.csr, 2)});
    }
    t.print(std::cout);

    const auto &last = series.back();
    std::cout << "\nEndpoint: performance " << fmtGain(last.rel_gain, 1)
              << ", transistor performance " << fmtGain(last.rel_phy, 1)
              << ", CSR " << fmtGain(last.csr, 2)
              << "  (paper: 510x / 307.4x / ~1.66x)\n\n";

    // The figure itself: relative performance over introduction dates,
    // log y-axis, with the transistor-performance and CSR series.
    plot::ChartConfig cfg;
    cfg.width = 68;
    cfg.height = 16;
    cfg.y_scale = plot::Scale::Log10;
    cfg.x_plain_ticks = true; // year axis
    cfg.title = "Relative performance vs introduction date "
                "(normalized to the 130nm ASIC)";
    cfg.x_label = "introduction date [year]";
    plot::AsciiChart chart(cfg);
    plot::Series perf{"performance", 'P', {}, {}};
    plot::Series phy{"transistor performance", 'T', {}, {}};
    plot::Series csr_series{"chip specialization return", 'C', {}, {}};
    for (const auto &pt : series) {
        perf.xs.push_back(pt.year);
        perf.ys.push_back(pt.rel_gain);
        phy.xs.push_back(pt.year);
        phy.ys.push_back(pt.rel_phy);
        csr_series.xs.push_back(pt.year);
        csr_series.ys.push_back(pt.csr);
    }
    chart.addSeries(std::move(phy));
    chart.addSeries(std::move(csr_series));
    chart.addSeries(std::move(perf));
    chart.print(std::cout);
    return 0;
}
