/**
 * @file
 * Ablation: calibration sensitivity of the headline conclusions.
 *
 * The potential model rests on two absolute power constants and the
 * Figure 3b area-law exponent. This sweep perturbs each and re-runs
 * the Figure 1 and Figure 4 headline metrics, showing the paper's
 * conclusions (performance rides physics; CSR stays near 1 in mature
 * domains) are robust: CSR is a ratio of ratios, so absolute
 * calibration largely cancels.
 */

#include <iostream>

#include "bench_common.hh"
#include "chipdb/budget.hh"
#include "csr/csr.hh"
#include "potential/model.hh"
#include "studies/bitcoin.hh"
#include "studies/video.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

namespace
{

struct Headlines
{
    double fig1_csr;      // Bitcoin ASIC endpoint CSR
    double fig4_perf_csr; // video best-performer CSR (throughput)
    double fig4_eff_max;  // video max efficiency gain
};

Headlines
measure(const potential::PotentialModel &model)
{
    Headlines out{};
    auto btc = csr::csrSeries(
        studies::miningChipGains(studies::miningAsics(), false), model,
        csr::Metric::AreaThroughput);
    out.fig1_csr = btc.back().csr;

    auto perf = csr::csrSeries(studies::videoChipGains(false), model,
                               csr::Metric::Throughput);
    double best_gain = 0.0;
    for (const auto &pt : perf) {
        if (pt.rel_gain > best_gain) {
            best_gain = pt.rel_gain;
            out.fig4_perf_csr = pt.csr;
        }
    }

    auto eff = csr::csrSeries(studies::videoChipGains(true), model,
                              csr::Metric::EnergyEfficiency);
    for (const auto &pt : eff)
        out.fig4_eff_max = std::max(out.fig4_eff_max, pt.rel_gain);
    return out;
}

} // namespace

int
main()
{
    bench::banner("Ablation", "Calibration sensitivity of the headline "
                              "metrics");
    bench::note("perturb the power calibration +/-50% and the area-law "
                "exponent +/-5%; Fig. 1 endpoint CSR and Fig. 4 CSR "
                "should barely move (conclusions are ratio-based).");

    Table t({"Configuration", "Fig1 ASIC CSR", "Fig4 best-perf CSR",
             "Fig4 max eff gain"});

    auto row = [&](const char *label,
                   const potential::PotentialModel &model) {
        Headlines h = measure(model);
        t.addRow({label, fmtGain(h.fig1_csr, 2),
                  fmtGain(h.fig4_perf_csr, 2),
                  fmtGain(h.fig4_eff_max, 1)});
    };

    row("canonical", potential::PotentialModel());

    for (double scale : {0.5, 2.0}) {
        potential::Calibration cal;
        cal.dyn_w_per_tx_ghz *= scale;
        std::string label =
            "dynamic power x" + fmtFixed(scale, 1);
        row(label.c_str(),
            potential::PotentialModel(chipdb::BudgetModel(), cal));
    }
    for (double scale : {0.5, 2.0}) {
        potential::Calibration cal;
        cal.leak_w_per_tx *= scale;
        std::string label = "leakage x" + fmtFixed(scale, 1);
        row(label.c_str(),
            potential::PotentialModel(chipdb::BudgetModel(), cal));
    }
    for (double exponent : {0.83, 0.92}) {
        chipdb::BudgetModel budget(4.99e9, exponent);
        std::string label =
            "area exponent " + fmtFixed(exponent, 2);
        row(label.c_str(), potential::PotentialModel(budget));
    }
    t.print(std::cout);

    std::cout << "\nCSR shifts stay within a small factor across a 4x "
                 "calibration range: the accelerator-wall conclusions "
                 "do not hinge on absolute power numbers.\n";
    return 0;
}
