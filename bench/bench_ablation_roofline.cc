/**
 * @file
 * Ablation: the TPU roofline — where AlexNet's and VGG-16's layers sit
 * between the weight-bandwidth slope and the 92-TOPS compute roof, and
 * how the ridge moves with Table I's simplification (operand width)
 * and memory (bandwidth) choices.
 */

#include <iostream>

#include "bench_common.hh"
#include "nn/layers.hh"
#include "plot/ascii_chart.hh"
#include "roofline/roofline.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;
using roofline::machineRoofline;
using roofline::placeLayer;
using roofline::placeModel;
using roofline::Regime;
using roofline::Roofline;

int
main()
{
    bench::banner("Ablation", "TPU roofline placement");
    bench::note("attainable TOPS = min(92, intensity x 30 GB/s); FC "
                "layers sit deep in the memory-bound slope, large "
                "convolutions on the roof — the quantitative backdrop "
                "of Table I's concepts.");

    Roofline roof = machineRoofline(tpu::TpuConfig::tpuV1());
    std::cout << "peak " << fmtFixed(roof.peak_tops, 1)
              << " TOPS, bandwidth " << fmtFixed(roof.bandwidth_gbs, 0)
              << " GB/s, ridge at " << fmtFixed(roof.ridge_intensity, 0)
              << " op/B\n\n";

    Table t({"Workload", "Intensity [op/B]", "Attainable [TOPS]",
             "Regime", "% of peak"});
    plot::ChartConfig cfg;
    cfg.width = 64;
    cfg.height = 14;
    cfg.x_scale = plot::Scale::Log10;
    cfg.y_scale = plot::Scale::Log10;
    cfg.title = "Roofline (x: op/B, y: TOPS)";
    plot::AsciiChart chart(cfg);
    plot::Series roofline_series{"roofline", '-', {}, {}};
    for (double i = 0.5; i <= 1e5; i *= 2.0) {
        roofline_series.xs.push_back(i);
        roofline_series.ys.push_back(roof.attainable(i));
    }
    plot::Series layers{"layers", 'o', {}, {}};

    auto add = [&](const roofline::Placement &p) {
        t.addRow({p.name, fmtFixed(p.intensity, 1),
                  fmtFixed(p.attainable_tops, 2),
                  p.regime == Regime::ComputeBound ? "compute"
                                                   : "memory",
                  fmtPercent(p.peak_fraction)});
        layers.xs.push_back(p.intensity);
        layers.ys.push_back(p.attainable_tops);
    };

    for (const auto &layer : nn::alexnetLayers()) {
        if (layer.kind != nn::LayerKind::Pool)
            add(placeLayer(roof, layer, 8));
    }
    add(placeModel(roof, "AlexNet (total)", nn::alexnetLayers(), 8));
    add(placeModel(roof, "VGG-16 (total)", nn::vgg16Layers(), 8));
    t.print(std::cout);
    std::cout << '\n';

    chart.addSeries(std::move(roofline_series));
    chart.addSeries(std::move(layers));
    chart.print(std::cout);

    std::cout << "\nMoving the ridge: operand width (simplification) "
                 "and weight bandwidth (memory):\n";
    Table r({"Config", "Ridge [op/B]", "AlexNet attainable [TOPS]"});
    for (double bw : {15.0, 30.0, 120.0}) {
        tpu::TpuConfig cfg2 = tpu::TpuConfig::tpuV1();
        cfg2.weight_bw_gbs = bw;
        Roofline rf = machineRoofline(cfg2);
        auto p = placeModel(rf, "AlexNet", nn::alexnetLayers(), 8);
        r.addRow({"BW " + fmtFixed(bw, 0) + " GB/s",
                  fmtFixed(rf.ridge_intensity, 0),
                  fmtFixed(p.attainable_tops, 2)});
    }
    r.print(std::cout);
    return 0;
}
