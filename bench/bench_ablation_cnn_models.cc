/**
 * @file
 * Ablation: model size and the FPGA gains disparity (Section IV-C).
 *
 * The paper attributes VGG-16's smaller FPGA gains to its size: ~3x
 * the parameters and ~20x the operations per image of AlexNet. We
 * compute both from the real topologies and show per-layer where the
 * weight pressure concentrates.
 */

#include <iostream>

#include "bench_common.hh"
#include "nn/layers.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

namespace
{

void
printModel(const char *name, const std::vector<nn::Layer> &layers)
{
    std::cout << "--- " << name << " ---\n";
    Table t({"Layer", "Output", "MACs [M]", "Params [M]",
             "Activations [K]"});
    for (const auto &layer : layers) {
        nn::LayerCost c = nn::layerCost(layer);
        t.addRow({layer.name,
                  std::to_string(c.out_w) + "x" +
                      std::to_string(c.out_h),
                  fmtFixed(c.macs / 1e6, 1), fmtFixed(c.params / 1e6, 2),
                  fmtFixed(c.activations / 1e3, 0)});
    }
    nn::ModelCost total = nn::modelCost(layers);
    t.addRow({"TOTAL", "-", fmtFixed(total.total_macs / 1e6, 0),
              fmtFixed(total.total_params / 1e6, 1),
              fmtFixed(total.total_activations / 1e3, 0)});
    t.print(std::cout);
    std::cout << "GOP/image: " << fmtFixed(total.gops_per_image, 2)
              << "\n\n";
}

} // namespace

int
main()
{
    bench::banner("Ablation", "CNN model sizes behind the Figure 8 "
                              "disparity");
    bench::note("VGG-16 vs AlexNet: ~3x the data, ~20x the operations "
                "per image — the size that 'stresses FPGA resources' "
                "and caps VGG's specialization gains.");

    printModel("AlexNet", nn::alexnetLayers());
    printModel("VGG-16", nn::vgg16Layers());

    nn::ModelCost alex = nn::modelCost(nn::alexnetLayers());
    nn::ModelCost vgg = nn::modelCost(nn::vgg16Layers());
    std::cout << "VGG-16 / AlexNet: operations "
              << fmtGain(vgg.total_macs / alex.total_macs, 1)
              << " (paper: ~20x), parameters "
              << fmtGain(vgg.total_params / alex.total_params, 1)
              << " (paper: ~3x)\n";
    return 0;
}
