/**
 * @file
 * Section IV-E: "Observations and Insights" — the paper's four
 * cross-study conclusions, each checked programmatically against this
 * repository's own data and printed with its supporting numbers.
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "csr/csr.hh"
#include "potential/model.hh"
#include "studies/bitcoin.hh"
#include "studies/fpga.hh"
#include "studies/video.hh"
#include "util/format.hh"

using namespace accelwall;

namespace
{

void
verdict(const char *claim, bool holds, const std::string &evidence)
{
    std::cout << (holds ? "[HOLDS] " : "[FAILS] ") << claim << "\n"
              << "        " << evidence << "\n\n";
}

} // namespace

int
main()
{
    bench::banner("Section IV-E", "Observations and insights, checked "
                                  "against this build's data");

    potential::PotentialModel model;

    // 1. Specialization returns and computation maturity.
    {
        auto video = csr::csrSeries(studies::videoChipGains(false),
                                    model, csr::Metric::Throughput);
        auto fpga = csr::csrSeries(
            studies::fpgaChipGains(studies::fpgaDesignsFor("AlexNet"),
                                   false),
            model, csr::Metric::Throughput);
        double video_best_csr = 0.0, fpga_best_csr = 0.0;
        for (const auto &pt : video)
            video_best_csr = std::max(video_best_csr, pt.csr);
        for (const auto &pt : fpga)
            fpga_best_csr = std::max(fpga_best_csr, pt.csr);
        verdict("Mature domains plateau; emerging domains still mine "
                "CSR",
                fpga_best_csr > 2.0 * video_best_csr,
                "best CSR: video decode (mature) " +
                    fmtGain(video_best_csr, 2) + " vs FPGA CNN "
                    "(emerging) " + fmtGain(fpga_best_csr, 2));
    }

    // 2. A new platform delivers a non-recurring boost.
    {
        auto chips = studies::miningChips();
        auto series = csr::csrSeries(
            studies::miningChipGains(chips, false), model,
            csr::Metric::AreaThroughput);
        double first_asic = 0.0, best_pre = 0.0, max_within = 0.0;
        double first_seen = 0.0;
        for (std::size_t i = 0; i < chips.size(); ++i) {
            if (chips[i].platform == chipdb::Platform::ASIC) {
                if (first_asic == 0.0) {
                    first_asic = series[i].csr;
                    first_seen = series[i].csr;
                }
                max_within = std::max(max_within,
                                      series[i].csr / first_seen);
            } else {
                best_pre = std::max(best_pre, series[i].csr);
            }
        }
        verdict("Platform transitions boost CSR once; within-platform "
                "CSR moves little",
                first_asic > 20.0 * best_pre && max_within < 10.0,
                "ASIC arrival CSR jump " +
                    fmtGain(first_asic / best_pre, 0) +
                    "; within-ASIC CSR spread only " +
                    fmtGain(max_within, 1));
    }

    // 3. Confined computations stagnate across all platforms.
    {
        auto asics = studies::miningAsics();
        auto series = csr::csrSeries(
            studies::miningChipGains(asics, false), model,
            csr::Metric::AreaThroughput);
        double csr_span = series.back().csr / series.front().csr;
        double gain_span =
            series.back().rel_gain / series.front().rel_gain;
        verdict("Confined computations (SHA-256) gain via transistors, "
                "not algorithms",
                csr_span < 3.0 && gain_span > 100.0,
                "across four ASIC generations: gains " +
                    fmtGain(gain_span, 0) + " but CSR only " +
                    fmtGain(csr_span, 2));
    }

    // 4. Specialized chips still highly depend on transistors.
    {
        auto video = csr::csrSeries(studies::videoChipGains(false),
                                    model, csr::Metric::Throughput);
        double log_gain = 0.0, log_phy = 0.0;
        for (const auto &pt : video) {
            log_gain += std::log(std::max(pt.rel_gain, 1e-12));
            log_phy += std::log(std::max(pt.rel_phy, 1e-12));
        }
        double phy_fraction = log_phy / log_gain;
        verdict("Physical capabilities dominate end-to-end gains",
                phy_fraction > 0.8,
                "video decoders: " + fmtPercent(phy_fraction) +
                    " of cumulative log-gain is CMOS-driven");
    }

    std::cout << "When CMOS scaling ends, gains depend on the CSR "
                 "columns above — which is the accelerator wall.\n";
    return 0;
}
