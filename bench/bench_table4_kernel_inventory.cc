/**
 * @file
 * Table IV: the evaluated applications and domains, extended with each
 * generated DFG's structural profile (the quantities the Section VI
 * sweep exercises).
 */

#include <iostream>

#include "bench_common.hh"
#include "dfg/analysis.hh"
#include "kernels/kernels.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main()
{
    bench::banner("Table IV", "Evaluated applications and domains");
    bench::note("MachSuite / SHOC / CortexSuite / PARSEC kernels "
                "rebuilt as parameterized DFG generators.");

    Table t({"Abbrev", "Application", "Domain", "|V|", "|E|", "Depth",
             "max|WS|", "Paths"});
    for (const auto &info : kernels::kernelTable()) {
        dfg::Graph g = kernels::makeKernel(info.abbrev);
        dfg::Analysis a = dfg::analyze(g);
        t.addRow({info.abbrev, info.name, info.domain,
                  std::to_string(a.num_nodes),
                  std::to_string(a.num_edges), std::to_string(a.depth),
                  std::to_string(a.max_working_set),
                  fmtSi(a.num_paths, 1)});
    }
    t.print(std::cout);
    return 0;
}
