/**
 * @file
 * Figure 13: 3D-stencil power/timing/CMOS design-space sweep — the
 * runtime-power plane across CMOS nodes, partitioning factors, and
 * simplification degrees, with the best-efficiency point highlighted.
 */

#include <iostream>

#include "aladdin/simulator.hh"
#include "aladdin/sweep.hh"
#include "bench_common.hh"
#include "kernels/kernels.hh"
#include "plot/ascii_chart.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;
using aladdin::DesignPoint;
using aladdin::SimResult;
using aladdin::Simulator;

int
main()
{
    bench::banner("Figure 13", "3D stencil: power, timing, and CMOS "
                               "sweep");
    bench::note("partitioning improves runtime until kernel parallelism "
                "saturates; newer nodes keep improving via faster fused "
                "units; simplification and CMOS advancement cut power; "
                "the best energy efficiency lands on 5nm at high "
                "partitioning and deep-but-not-extreme simplification.");

    Simulator sim(kernels::makeS3d());

    std::cout << "Runtime [us] x node and partitioning "
                 "(simplification 1):\n";
    Table rt({"P \\ Node", "45nm", "22nm", "10nm", "5nm"});
    for (int p : {1, 4, 16, 64, 256, 1024, 4096}) {
        std::vector<std::string> row = {std::to_string(p)};
        for (double node : {45.0, 22.0, 10.0, 5.0}) {
            DesignPoint dp;
            dp.node_nm = node;
            dp.partition = p;
            row.push_back(fmtFixed(sim.run(dp).runtime_ns / 1e3, 3));
        }
        rt.addRow(row);
    }
    rt.print(std::cout);

    std::cout << "\nPower [mW] x node and simplification (P=64):\n";
    Table pw({"S \\ Node", "45nm", "22nm", "10nm", "5nm"});
    for (int s : {1, 4, 7, 10, 13}) {
        std::vector<std::string> row = {std::to_string(s)};
        for (double node : {45.0, 22.0, 10.0, 5.0}) {
            DesignPoint dp;
            dp.node_nm = node;
            dp.partition = 64;
            dp.simplification = s;
            row.push_back(fmtFixed(sim.run(dp).power_mw, 2));
        }
        pw.addRow(row);
    }
    pw.print(std::cout);

    // The full Table III sweep and its optimum.
    auto points = aladdin::runSweep(sim, aladdin::SweepConfig::paper());
    std::size_t best = aladdin::bestEfficiency(points);
    const auto &bp = points[best];
    std::cout << "\nBest energy efficiency: " << bp.dp.str() << " — "
              << fmtFixed(bp.res.runtime_ns / 1e3, 3) << "us, "
              << fmtFixed(bp.res.power_mw, 2) << "mW, "
              << fmtSi(bp.res.efficiency_opj, 2) << " OP/J ("
              << points.size() << " design points swept)\n";
    std::cout << "Paper: optimal points land on 5nm CMOS at the highest "
                 "partitioning before runtime tapers and the highest "
                 "simplification before deep pipelining bites.\n\n";

    // The figure's plane: every swept design in runtime-power space,
    // one marker per CMOS node, the optimum highlighted.
    plot::ChartConfig cfg;
    cfg.width = 68;
    cfg.height = 18;
    cfg.x_scale = plot::Scale::Log10;
    cfg.y_scale = plot::Scale::Log10;
    cfg.title = "3D stencil design space (x: runtime [us], "
                "y: power [W])";
    plot::AsciiChart chart(cfg);

    const struct { double node; char marker; } series_spec[] = {
        { 45.0, '4' }, { 22.0, '2' }, { 10.0, '1' }, { 5.0, '5' },
    };
    for (const auto &ss : series_spec) {
        plot::Series s{fmtNode(ss.node), ss.marker, {}, {}};
        for (const auto &pt : points) {
            if (pt.dp.node_nm != ss.node)
                continue;
            s.xs.push_back(pt.res.runtime_ns / 1e3);
            s.ys.push_back(pt.res.power_mw / 1e3);
        }
        chart.addSeries(std::move(s));
    }
    chart.addSeries({"best energy efficiency", '*',
                     {bp.res.runtime_ns / 1e3},
                     {bp.res.power_mw / 1e3}});
    chart.print(std::cout);
    return 0;
}
