/**
 * @file
 * Figure 9: Bitcoin mining across CPU/GPU/FPGA/ASIC platforms — per
 * area performance (9a) and energy efficiency (9b) with CSR, versus the
 * Athlon 64 CPU miner.
 */

#include <iostream>

#include "bench_common.hh"
#include "csr/csr.hh"
#include "plot/ascii_chart.hh"
#include "potential/model.hh"
#include "studies/bitcoin.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

namespace
{

void
printSeries(bool efficiency, const potential::PotentialModel &model)
{
    auto chips = studies::miningChips();
    auto series = csr::csrSeries(
        studies::miningChipGains(chips, efficiency), model,
        efficiency ? csr::Metric::EnergyEfficiency
                   : csr::Metric::AreaThroughput);

    Table t({"Chip", "Platform", "Node",
             efficiency ? "GH/J" : "GH/s/mm2", "Gain", "Physical",
             "CSR"});
    for (std::size_t i = 0; i < series.size(); ++i) {
        const auto &c = chips[i];
        double value = efficiency ? c.ghs / c.watts
                                  : c.ghs / c.area_mm2;
        t.addRow({c.label, chipdb::platformName(c.platform),
                  fmtNode(c.node_nm), fmtFixed(value, 5),
                  fmtGain(series[i].rel_gain, 1),
                  fmtGain(series[i].rel_phy, 1),
                  fmtGain(series[i].csr, 1)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    bench::banner("Figure 9", "Bitcoin mining across CPU/GPU/FPGA/ASIC "
                              "platforms");
    bench::note("ASIC gains beat CPUs by orders of magnitude via a "
                "non-recurring platform-transition CSR boost "
                "(~600,000x total perf/area, ~600x across ASICs); "
                "efficiency CSR shows two improvement regions split by "
                "the 110nm -> 28nm jump.");

    potential::PotentialModel model;

    std::cout << "(a) Performance per area\n";
    printSeries(false, model);

    std::cout << "\n(b) Energy efficiency\n";
    printSeries(true, model);

    // The figure: relative gain and CSR per chip, log scale, one
    // marker per platform.
    std::cout << '\n';
    auto chips = studies::miningChips();
    auto series = csr::csrSeries(
        studies::miningChipGains(chips, false), model,
        csr::Metric::AreaThroughput);
    plot::ChartConfig cfg;
    cfg.width = 68;
    cfg.height = 18;
    cfg.y_scale = plot::Scale::Log10;
    cfg.x_plain_ticks = true;
    cfg.title = "Per-area mining gain vs date (C/G/F/A = platform; "
                "c = CSR)";
    plot::AsciiChart chart(cfg);
    plot::Series csr_series{"CSR", 'c', {}, {}};
    const struct { chipdb::Platform p; char marker; } plats[] = {
        { chipdb::Platform::CPU, 'C' },
        { chipdb::Platform::GPU, 'G' },
        { chipdb::Platform::FPGA, 'F' },
        { chipdb::Platform::ASIC, 'A' },
    };
    for (const auto &ps : plats) {
        plot::Series s{chipdb::platformName(ps.p), ps.marker, {}, {}};
        for (std::size_t i = 0; i < chips.size(); ++i) {
            if (chips[i].platform != ps.p)
                continue;
            s.xs.push_back(chips[i].year);
            s.ys.push_back(series[i].rel_gain);
            csr_series.xs.push_back(chips[i].year);
            csr_series.ys.push_back(series[i].csr);
        }
        chart.addSeries(std::move(s));
    }
    chart.addSeries(std::move(csr_series));
    chart.print(std::cout);
    return 0;
}
