/**
 * @file
 * Ablation: memory and communication specialization concepts (Table I
 * rows 1-6, Table II's MEM/COMM columns) applied in the simulator.
 *
 * Sweeps the 3x3 (memory x communication) concept grid per kernel:
 * simple/banked/heterogeneous memory against FIFO/concurrent/DMA
 * fabrics, showing the Table II tradeoff empirically — heterogeneity
 * buys time at space (area/leakage) cost, simplification the reverse,
 * and the winner depends on the kernel's access pattern.
 */

#include <iostream>

#include "aladdin/simulator.hh"
#include "bench_common.hh"
#include "kernels/kernels.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;
using aladdin::CommMode;
using aladdin::DesignPoint;
using aladdin::MemoryMode;
using aladdin::Simulator;

int
main()
{
    bench::banner("Ablation", "Memory x communication concept grid");
    bench::note("TRD streams root loads (DMA shines); SMV's indirect "
                "accesses conflict in striped banks (heterogeneous "
                "layout shines); NWN is latency-bound (the FIFO's "
                "forwarding cycle hurts most).");

    const MemoryMode mems[] = {MemoryMode::Simple, MemoryMode::Banked,
                               MemoryMode::Heterogeneous};
    const CommMode comms[] = {CommMode::Fifo, CommMode::Concurrent,
                              CommMode::Dma};

    for (const char *abbrev : {"TRD", "SMV", "NWN", "S3D"}) {
        Simulator sim(kernels::makeKernel(abbrev));
        std::cout << "--- " << abbrev << " (P=16, 14nm) ---\n";
        Table t({"Memory \\ Comm", "fifo", "concurrent", "dma"});
        Table a({"Memory \\ Comm (area um2)", "fifo", "concurrent",
                 "dma"});
        for (MemoryMode mem : mems) {
            std::vector<std::string> row = {
                aladdin::memoryModeName(mem)};
            std::vector<std::string> arow = {
                aladdin::memoryModeName(mem)};
            for (CommMode comm : comms) {
                DesignPoint dp;
                dp.node_nm = 14.0;
                dp.partition = 16;
                dp.memory = mem;
                dp.comm = comm;
                auto res = sim.run(dp);
                row.push_back(fmtFixed(res.runtime_ns / 1e3, 3) + "us");
                arow.push_back(fmtSi(res.area_um2, 1));
            }
            t.addRow(row);
            a.addRow(arow);
        }
        t.print(std::cout);
        a.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
