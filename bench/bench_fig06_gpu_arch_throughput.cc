/**
 * @file
 * Figure 6: GPU architecture + CMOS scaling, throughput — per
 * architecture absolute gains (vs Tesla) via the Eq. 3/4 relative-gain
 * closure, and the corresponding chip specialization return.
 */

#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.hh"
#include "csr/arch_gains.hh"
#include "potential/model.hh"
#include "studies/gpu.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main()
{
    bench::banner("Figure 6", "Architecture + CMOS scaling: throughput");
    bench::note("newer architectures on a given node deliver better "
                "absolute gains; the first architecture on a new node "
                "(e.g. Fermi) regresses in CSR; overall CSR for 16nm "
                "Pascal is roughly that of 65nm Tesla (~1.0-1.6x band "
                "vs 13-16x absolute).");

    csr::ArchGainSolver solver(5);
    for (const auto &r : studies::gpuBenchmarks())
        solver.addObservation(r.arch, r.app, r.fps);
    solver.solve();

    // Physical potential per architecture: geometric mean over chips.
    potential::PotentialModel model;
    std::map<std::string, std::pair<double, int>> pots;
    for (const auto &gpu : studies::gpuChips()) {
        auto &[log_sum, n] = pots[gpu.arch];
        log_sum += std::log(model.throughput(studies::gpuSpec(gpu)).raw());
        ++n;
    }
    auto phy = [&](const std::string &arch) {
        const auto &[log_sum, n] = pots.at(arch);
        return std::exp(log_sum / n);
    };

    const std::string base = "Tesla";
    Table t({"Architecture", "Node", "Gain vs Tesla", "Physical",
             "CSR", "Relation", "Embedded quality"});
    for (const auto &arch : studies::gpuArchs()) {
        double gain = solver.gain(arch.name, base);
        double rel_phy = phy(arch.name) / phy(base);
        t.addRow({arch.name, fmtNode(arch.node_nm), fmtGain(gain, 2),
                  fmtGain(rel_phy, 2), fmtGain(gain / rel_phy, 2),
                  solver.isDirect(arch.name, base) ? "direct (Eq.3)"
                                                   : "transitive (Eq.4)",
                  fmtGain(arch.quality / studies::archQuality(base),
                          2)});
    }
    t.print(std::cout);

    std::cout << "\nCSR column should track the embedded quality "
                 "column: the pipeline recovers the ground truth the "
                 "synthetic frame rates hide behind CMOS scaling.\n";
    return 0;
}
