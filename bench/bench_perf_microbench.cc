/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths: DFG
 * scheduling across design points, corpus generation + regression, and
 * CSR pipelines. These guard the wall-clock budget of the Figure 13/14
 * sweeps (1820 design points x 16 kernels). The sweep benchmarks run
 * under BOTH evaluation engines (SoA and legacy), and the binary exits
 * nonzero if the SoA engine falls below 2x legacy on the quick grid —
 * see checkSoaFloor().
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <vector>

#include "aladdin/simulator.hh"
#include "aladdin/sweep.hh"
#include "chipdb/budget.hh"
#include "chipdb/synth.hh"
#include "crypto/sha256.hh"
#include "csr/csr.hh"
#include "kernels/kernels.hh"
#include "potential/model.hh"
#include "studies/video.hh"

using namespace accelwall;

namespace
{

void
BM_ScheduleS3d(benchmark::State &state)
{
    aladdin::Simulator sim(kernels::makeS3d());
    aladdin::DesignPoint dp;
    dp.node_nm = 5.0;
    dp.partition = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.run(dp));
    state.SetItemsProcessed(state.iterations() *
                            sim.graph().numNodes());
}
BENCHMARK(BM_ScheduleS3d)->Arg(1)->Arg(64)->Arg(4096);

void
BM_ScheduleBtcChained(benchmark::State &state)
{
    aladdin::Simulator sim(kernels::makeKernel("BTC"));
    aladdin::DesignPoint dp;
    dp.node_nm = 5.0;
    dp.partition = 8;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.run(dp));
    state.SetItemsProcessed(state.iterations() *
                            sim.graph().numNodes());
}
BENCHMARK(BM_ScheduleBtcChained);

/**
 * The full Table III sweep grid at a given thread count, under each
 * evaluation engine. Args are {jobs, engine}: jobs 1 is the serial
 * baseline, jobs 8 records the parallel speedup of the repo's hottest
 * path (wall-clock time, hence UseRealTime); engine 0 is the SoA plan
 * evaluator, engine 1 the legacy pointer-walking Simulator::run()
 * path kept as the differential oracle. The sweepdiff suite proves
 * all four cells produce identical output.
 */
void
BM_SweepPaperGrid(benchmark::State &state)
{
    aladdin::Simulator sim(kernels::makeKernel("FFT"));
    auto cfg = aladdin::SweepConfig::paper();
    aladdin::SweepOptions opts;
    opts.jobs = static_cast<int>(state.range(0));
    opts.engine = state.range(1) == 0 ? aladdin::SweepEngine::Soa
                                      : aladdin::SweepEngine::Legacy;
    std::size_t grid = cfg.nodes.size() * cfg.partitions.size() *
                       cfg.simplifications.size();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            aladdin::runSweepChecked(sim, cfg, opts));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(grid));
}
BENCHMARK(BM_SweepPaperGrid)
    ->ArgNames({"jobs", "engine"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_KernelGeneration(benchmark::State &state)
{
    const auto &table = kernels::kernelTable();
    for (auto _ : state) {
        for (const auto &info : table)
            benchmark::DoNotOptimize(kernels::makeKernel(info.abbrev));
    }
}
BENCHMARK(BM_KernelGeneration);

void
BM_CorpusAndFit(benchmark::State &state)
{
    for (auto _ : state) {
        auto corpus = chipdb::makeSynthCorpus();
        benchmark::DoNotOptimize(chipdb::fitAreaModel(corpus));
    }
}
BENCHMARK(BM_CorpusAndFit);

void
BM_CsrSeries(benchmark::State &state)
{
    potential::PotentialModel model;
    auto chips = studies::videoChipGains(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            csr::csrSeries(chips, model, csr::Metric::Throughput));
    }
}
BENCHMARK(BM_CsrSeries);

void
BM_Sha256Block(benchmark::State &state)
{
    std::vector<std::uint8_t> data(8192, 0xAB);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            crypto::Sha256::hash(data.data(), data.size()));
    state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Sha256Block);

/**
 * Regression gate run after the benchmarks: the SoA engine must stay
 * at least 2x faster than legacy on the quick grid (the committed
 * BENCH_sweep.json records ~5x; 2x leaves headroom for noisy CI
 * machines while still catching a real regression). Median-of-3 per
 * engine over the full kernel table, warmup round untimed.
 */
int
checkSoaFloor()
{
    using Clock = std::chrono::steady_clock;
    constexpr double kFloor = 2.0;
    constexpr int kRounds = 3;

    std::vector<aladdin::Simulator> sims;
    for (const auto &info : kernels::kernelTable())
        sims.emplace_back(kernels::makeKernel(info.abbrev));
    const auto cfg = aladdin::SweepConfig::quick();

    auto measure = [&](aladdin::SweepEngine engine) {
        aladdin::SweepOptions opts;
        opts.engine = engine;
        (void)aladdin::runSweepChecked(sims.front(), cfg, opts);
        std::array<double, kRounds> ms{};
        for (int r = 0; r < kRounds; ++r) {
            auto t0 = Clock::now();
            for (const auto &sim : sims)
                (void)aladdin::runSweepChecked(sim, cfg, opts);
            ms[r] = std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count();
        }
        std::sort(ms.begin(), ms.end());
        return ms[kRounds / 2];
    };

    double soa_ms = measure(aladdin::SweepEngine::Soa);
    double legacy_ms = measure(aladdin::SweepEngine::Legacy);
    double speedup = soa_ms > 0.0 ? legacy_ms / soa_ms : 0.0;
    std::fprintf(stderr,
                 "soa-floor: quick grid soa %.1f ms, legacy %.1f ms, "
                 "speedup %.2fx (floor %.1fx)\n",
                 soa_ms, legacy_ms, speedup, kFloor);
    if (speedup < kFloor) {
        std::fprintf(stderr,
                     "FAIL: SoA engine regressed below %.1fx legacy\n",
                     kFloor);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return checkSoaFloor();
}
