/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths: DFG
 * scheduling across design points, corpus generation + regression, and
 * CSR pipelines. These guard the wall-clock budget of the Figure 13/14
 * sweeps (1820 design points x 16 kernels).
 */

#include <benchmark/benchmark.h>

#include "aladdin/simulator.hh"
#include "aladdin/sweep.hh"
#include "chipdb/budget.hh"
#include "chipdb/synth.hh"
#include "crypto/sha256.hh"
#include "csr/csr.hh"
#include "kernels/kernels.hh"
#include "potential/model.hh"
#include "studies/video.hh"

using namespace accelwall;

namespace
{

void
BM_ScheduleS3d(benchmark::State &state)
{
    aladdin::Simulator sim(kernels::makeS3d());
    aladdin::DesignPoint dp;
    dp.node_nm = 5.0;
    dp.partition = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.run(dp));
    state.SetItemsProcessed(state.iterations() *
                            sim.graph().numNodes());
}
BENCHMARK(BM_ScheduleS3d)->Arg(1)->Arg(64)->Arg(4096);

void
BM_ScheduleBtcChained(benchmark::State &state)
{
    aladdin::Simulator sim(kernels::makeKernel("BTC"));
    aladdin::DesignPoint dp;
    dp.node_nm = 5.0;
    dp.partition = 8;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.run(dp));
    state.SetItemsProcessed(state.iterations() *
                            sim.graph().numNodes());
}
BENCHMARK(BM_ScheduleBtcChained);

/**
 * The full Table III sweep grid at a given thread count. Arg(1) is the
 * serial baseline; Arg(8) records the parallel speedup of the repo's
 * hottest path (wall-clock time, hence UseRealTime). The determinism
 * test in test_aladdin.cc proves both produce identical output.
 */
void
BM_SweepPaperGrid(benchmark::State &state)
{
    aladdin::Simulator sim(kernels::makeKernel("FFT"));
    auto cfg = aladdin::SweepConfig::paper();
    int jobs = static_cast<int>(state.range(0));
    std::size_t grid = cfg.nodes.size() * cfg.partitions.size() *
                       cfg.simplifications.size();
    for (auto _ : state)
        benchmark::DoNotOptimize(aladdin::runSweep(sim, cfg, jobs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(grid));
}
BENCHMARK(BM_SweepPaperGrid)
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_KernelGeneration(benchmark::State &state)
{
    const auto &table = kernels::kernelTable();
    for (auto _ : state) {
        for (const auto &info : table)
            benchmark::DoNotOptimize(kernels::makeKernel(info.abbrev));
    }
}
BENCHMARK(BM_KernelGeneration);

void
BM_CorpusAndFit(benchmark::State &state)
{
    for (auto _ : state) {
        auto corpus = chipdb::makeSynthCorpus();
        benchmark::DoNotOptimize(chipdb::fitAreaModel(corpus));
    }
}
BENCHMARK(BM_CorpusAndFit);

void
BM_CsrSeries(benchmark::State &state)
{
    potential::PotentialModel model;
    auto chips = studies::videoChipGains(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            csr::csrSeries(chips, model, csr::Metric::Throughput));
    }
}
BENCHMARK(BM_CsrSeries);

void
BM_Sha256Block(benchmark::State &state)
{
    std::vector<std::uint8_t> data(8192, 0xAB);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            crypto::Sha256::hash(data.data(), data.size()));
    state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Sha256Block);

} // namespace

BENCHMARK_MAIN();
