/**
 * @file
 * Ablation: computation heterogeneity (operation chaining) across CMOS
 * nodes — the mechanism behind Figure 13's "performance still improves
 * for newer CMOS nodes, since functional units are faster, and more
 * computation units are fused and scheduled in a cycle".
 */

#include <iostream>

#include "aladdin/simulator.hh"
#include "bench_common.hh"
#include "kernels/kernels.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main()
{
    bench::banner("Ablation", "Operation chaining x CMOS node");
    bench::note("chaining gains compound with process speed: faster "
                "gates fit more dependent logic levels into the fixed "
                "1 GHz cycle. Serial kernels (NWN) benefit most; "
                "latency-dominated FP kernels less.");

    Table t({"Kernel", "Node", "Runtime nohet [us]", "Runtime het [us]",
             "Speedup", "Fused ops"});
    for (const char *abbrev : {"NWN", "AES", "RED", "S3D", "BTC"}) {
        aladdin::Simulator sim(kernels::makeKernel(abbrev));
        for (double node : {45.0, 14.0, 5.0}) {
            aladdin::DesignPoint dp;
            dp.node_nm = node;
            dp.partition = 16;
            dp.chaining = false;
            auto plain = sim.run(dp);
            dp.chaining = true;
            auto fused = sim.run(dp);
            t.addRow({abbrev, fmtNode(node),
                      fmtFixed(plain.runtime_ns / 1e3, 3),
                      fmtFixed(fused.runtime_ns / 1e3, 3),
                      fmtGain(plain.runtime_ns / fused.runtime_ns, 2),
                      std::to_string(fused.fused_ops)});
        }
    }
    t.print(std::cout);
    return 0;
}
