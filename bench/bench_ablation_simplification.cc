/**
 * @file
 * Ablation: the simplification-degree sweep — energy falls with
 * datapath narrowing until the deep-pipelining regime adds latency and
 * register overhead (Figure 13's "highest simplification degree that
 * does not cause diminishing returns").
 */

#include <iostream>

#include "aladdin/fu_library.hh"
#include "aladdin/simulator.hh"
#include "bench_common.hh"
#include "kernels/kernels.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main()
{
    bench::banner("Ablation", "Simplification degree: energy vs "
                              "latency");
    bench::note("degrees 1..10 narrow the datapath (energy down, "
                "runtime flat); 11..13 deep-pipeline the units "
                "(chaining disabled, dependent chains stretch).");

    Table t({"Kernel", "Degree", "Width [b]", "Runtime [us]",
             "Energy [nJ]", "Efficiency [GOP/J]"});
    for (const char *abbrev : {"GMM", "NWN"}) {
        aladdin::Simulator sim(kernels::makeKernel(abbrev));
        for (int degree : {1, 4, 7, 10, 11, 13}) {
            aladdin::DesignPoint dp;
            dp.node_nm = 14.0;
            dp.partition = 16;
            dp.simplification = degree;
            auto res = sim.run(dp);
            t.addRow({abbrev, std::to_string(degree),
                      std::to_string(
                          aladdin::simplifiedWidth(degree)),
                      fmtFixed(res.runtime_ns / 1e3, 3),
                      fmtFixed(res.energy_pj / 1e3, 2),
                      fmtFixed(res.efficiency_opj / 1e9, 1)});
        }
    }
    t.print(std::cout);
    return 0;
}
