/**
 * @file
 * Ablation: the mining market over time — Section IV-D's platform
 * transitions reproduced endogenously from network growth, electricity
 * prices, and the chip dataset's physics.
 */

#include <cmath>
#include <iostream>
#include <string>

#include "bench_common.hh"
#include "economics/mining_market.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main()
{
    bench::banner("Ablation", "Mining-market platform transitions");
    bench::note("as network hashrate compounds, revenue per GH/s "
                "collapses; platforms drop out in order (CPU, GPU, "
                "FPGA) and the energy share of revenue becomes the "
                "dominating factor — the paper's Section IV-D story.");

    auto epochs = economics::simulateMarket();
    Table t({"Year", "Network GH/s", "$ / GH/s / day", "Best chip",
             "Payback [days]", "Energy share", "Profitable platforms"});
    for (const auto &epoch : epochs) {
        std::string platforms;
        for (auto p : epoch.profitable_platforms) {
            if (!platforms.empty())
                platforms += ",";
            platforms += chipdb::platformName(p);
        }
        t.addRow({fmtFixed(epoch.year, 2), fmtSi(epoch.network_ghs, 1),
                  fmtSi(epoch.usd_per_ghs_day, 1), epoch.best.chip,
                  std::isinf(epoch.best.payback_days.raw())
                      ? "never"
                      : fmtFixed(epoch.best.payback_days.raw(), 1),
                  fmtPercent(epoch.best.energy_cost_share), platforms});
    }
    t.print(std::cout);
    return 0;
}
