/**
 * @file
 * Figure 3b: transistor count given area and CMOS node. Re-derives the
 * paper's regression TC(D) = 4.99e9 * D^0.877 from the (synthetic)
 * datasheet corpus and prints the fitted curve over the figure's D
 * range alongside per-node-band sample counts.
 */

#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.hh"
#include "chipdb/budget.hh"
#include "chipdb/synth.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main()
{
    bench::banner("Figure 3b", "Transistor count vs density factor "
                               "D = area/node^2");
    bench::note("TC(D) = 4.99e9 * D^0.877 fit over 1612 CPU + 1001 GPU "
                "datasheets.");

    auto corpus = chipdb::makeSynthCorpus();
    auto fit = chipdb::fitAreaModel(corpus);

    std::cout << "corpus: " << corpus.size() << " records\n";
    std::cout << "fitted: TC(D) = " << fmtSi(fit.coeff, 2) << " * D^"
              << fmtFixed(fit.exponent, 3) << "  (R^2 = "
              << fmtFixed(fit.r2, 3) << ")\n";
    std::cout << "paper:  TC(D) = 4.99G * D^0.877\n\n";

    // The figure's node bands (legend: 16nm-12nm, 40nm-20nm, 80nm-45nm,
    // 180nm-90nm).
    std::map<std::string, int> bands;
    for (const auto &rec : corpus) {
        if (rec.transistors <= 0.0)
            continue;
        if (rec.node_nm <= 16.0)
            ++bands["16nm-12nm"];
        else if (rec.node_nm <= 40.0)
            ++bands["40nm-20nm"];
        else if (rec.node_nm <= 80.0)
            ++bands["80nm-45nm"];
        else
            ++bands["180nm-90nm"];
    }
    Table bt({"Node band", "Samples"});
    for (const auto &[band, count] : bands)
        bt.addRow({band, std::to_string(count)});
    bt.print(std::cout);

    std::cout << "\nFitted curve over the figure's axis:\n";
    Table t({"D [mm^2/nm^2]", "TC (fit)", "TC (paper law)"});
    chipdb::BudgetModel paper_law;
    for (double d = 0.01; d <= 100.0; d *= 10.0) {
        t.addRow({fmtFixed(d, 2), fmtSi(fit(d), 2),
                  fmtSi(paper_law
                            .areaTransistors(
                                units::SquareMillimeters{d * 25.0},
                                units::Nanometers{5.0})
                            .raw(),
                        2)});
        // note: area = D * node^2 with node=5nm gives D directly.
    }
    t.print(std::cout);

    std::cout << "\nLarge 5nm chips (D=32, 800mm^2): "
              << fmtSi(fit(32.0), 2)
              << " transistors (paper: approaching 100G, not all "
                 "usable)\n";
    return 0;
}
