/**
 * @file
 * Figure 2: the specialization stack, quantified. The paper's figure
 * is a taxonomy; this bench turns it into numbers by attributing each
 * case study's cumulative gain across the stack layers (physical via
 * the potential model, the rest via annotated generational steps).
 */

#include <iostream>

#include "bench_common.hh"
#include "potential/model.hh"
#include "stack/stack.hh"
#include "studies/bitcoin.hh"
#include "studies/fpga.hh"
#include "studies/video.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;
using stack::attributeStack;
using stack::Breakdown;
using stack::Layer;
using stack::Step;

namespace
{

void
addRow(Table &t, const char *study, const Breakdown &bd)
{
    auto share = [&](Layer layer) {
        auto it = bd.share.find(layer);
        return fmtPercent(it == bd.share.end() ? 0.0 : it->second);
    };
    t.addRow({study, fmtGain(bd.total_gain, 0),
              share(Layer::Physical), share(Layer::Platform),
              share(Layer::Algorithm), share(Layer::Framework),
              share(Layer::Engineering)});
}

} // namespace

int
main()
{
    bench::banner("Figure 2", "The specialization stack, quantified "
                              "per case study");
    bench::note("gain = physical x specialization-stack layers "
                "(Eq. 2). Platform transitions carry Bitcoin; the "
                "algorithm layer carries the emerging CNN domain; "
                "mature video decoding is nearly all physics.");

    potential::PotentialModel model;
    Table t({"Study", "Total gain", "%Physical", "%Platform",
             "%Algorithm", "%Framework", "%Engineering"});

    // Bitcoin: annotate platform boundaries.
    {
        auto chips =
            studies::miningChipGains(studies::miningChips(), false);
        const auto &raw = studies::miningChips();
        std::vector<Step> steps;
        for (std::size_t i = 0; i < chips.size(); ++i) {
            Step step{chips[i], {}};
            if (i > 0 && raw[i].platform != raw[i - 1].platform)
                step.changed.push_back(Layer::Platform);
            steps.push_back(std::move(step));
        }
        addRow(t, "Bitcoin (GH/s/mm2)",
               attributeStack(steps, model,
                              csr::Metric::AreaThroughput));
    }

    // Video decoders: all steps are engineering (same ASIC platform,
    // standardized codecs).
    {
        std::vector<Step> steps;
        for (auto &chip : studies::videoChipGains(false))
            steps.push_back({std::move(chip), {}});
        addRow(t, "Video decode (MPix/s)",
               attributeStack(steps, model, csr::Metric::Throughput));
    }

    // FPGA AlexNet: published designs compete on algorithms and
    // frameworks (OpenCL GEMM, Winograd, RTL compilers).
    {
        std::vector<Step> steps;
        auto chips = studies::fpgaChipGains(
            studies::fpgaDesignsFor("AlexNet"), false);
        for (std::size_t i = 0; i < chips.size(); ++i) {
            Step step{chips[i], {}};
            if (i > 0)
                step.changed = {Layer::Algorithm, Layer::Framework};
            steps.push_back(std::move(step));
        }
        addRow(t, "FPGA AlexNet (GOPS)",
               attributeStack(steps, model, csr::Metric::Throughput));
    }

    t.print(std::cout);
    std::cout << "\nShares are of cumulative log-gain and sum to 100% "
                 "per row (negative = the layer regressed).\n";
    return 0;
}
