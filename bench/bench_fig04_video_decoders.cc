/**
 * @file
 * Figure 4: video decoder ASICs — performance scaling and CSR (4a),
 * transistor budget and frequency (4b), energy efficiency and CSR (4c).
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "csr/csr.hh"
#include "plot/ascii_chart.hh"
#include "potential/model.hh"
#include "studies/video.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

namespace
{

void
printSeries(const std::vector<csr::CsrPoint> &series,
            const char *metric_label)
{
    // The paper presents gains "in an ascending manner".
    std::vector<csr::CsrPoint> sorted = series;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.rel_gain < b.rel_gain;
              });
    Table t({"Chip", metric_label, "Physical potential", "CSR"});
    for (const auto &pt : sorted) {
        t.addRow({pt.name, fmtGain(pt.rel_gain, 1),
                  fmtGain(pt.rel_phy, 1), fmtGain(pt.csr, 2)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    bench::banner("Figure 4", "Video decoder ASICs: performance, "
                              "budget, and energy efficiency");
    bench::note("throughput improved up to 64x and efficiency up to 34x "
                "over ISSCC2006, but CSR plateaued and dips below 1 for "
                "the best performers; JSSC2017 has ~36x the "
                "transistors.");

    potential::PotentialModel model;

    std::cout << "(a) Performance scaling and CSR\n";
    auto perf = csr::csrSeries(studies::videoChipGains(false), model,
                               csr::Metric::Throughput);
    printSeries(perf, "MPixels/s gain");

    std::cout << "\n(b) Transistor budget and frequency\n";
    Table budget({"Chip", "Node", "kGates", "SRAM [KB]",
                  "Transistors", "Rel. budget", "Freq [MHz]"});
    double base_tc =
        studies::videoTransistors(studies::videoDecoderChips().front());
    for (const auto &chip : studies::videoDecoderChips()) {
        double tc = studies::videoTransistors(chip);
        budget.addRow({chip.label, fmtNode(chip.node_nm),
                       fmtFixed(chip.kgates, 0),
                       fmtFixed(chip.sram_kb, 0), fmtSi(tc, 2),
                       fmtGain(tc / base_tc, 1),
                       fmtFixed(chip.freq_mhz, 0)});
    }
    budget.print(std::cout);

    std::cout << "\n(c) Energy efficiency scaling and CSR\n";
    auto eff = csr::csrSeries(studies::videoChipGains(true), model,
                              csr::Metric::EnergyEfficiency);
    printSeries(eff, "MPixels/J gain");

    auto max_gain = [](const std::vector<csr::CsrPoint> &s) {
        double best = 0.0;
        for (const auto &pt : s)
            best = std::max(best, pt.rel_gain);
        return best;
    };
    std::cout << "\nEndpoints: performance "
              << fmtGain(max_gain(perf), 1) << " (paper: 64x), "
              << "efficiency " << fmtGain(max_gain(eff), 1)
              << " (paper: 34x)\n\n";

    // The figure: ascending gains with the CSR series underneath.
    plot::ChartConfig cfg;
    cfg.width = 68;
    cfg.height = 14;
    cfg.y_scale = plot::Scale::Log10;
    cfg.title = "Decoder gains in ascending order (P = perf gain, "
                "E = eff gain, c/e = CSR)";
    plot::AsciiChart chart(cfg);
    auto series_of = [](const std::vector<csr::CsrPoint> &s, char mark,
                        const char *label, bool csr_axis) {
        std::vector<csr::CsrPoint> sorted = s;
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.rel_gain < b.rel_gain;
                  });
        plot::Series out{label, mark, {}, {}};
        for (std::size_t i = 0; i < sorted.size(); ++i) {
            out.xs.push_back(static_cast<double>(i));
            out.ys.push_back(csr_axis ? sorted[i].csr
                                      : sorted[i].rel_gain);
        }
        return out;
    };
    chart.addSeries(series_of(perf, 'P', "perf gain", false));
    chart.addSeries(series_of(eff, 'E', "eff gain", false));
    chart.addSeries(series_of(perf, 'c', "perf CSR", true));
    chart.addSeries(series_of(eff, 'e', "eff CSR", true));
    chart.print(std::cout);
    return 0;
}
