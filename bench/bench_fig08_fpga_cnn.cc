/**
 * @file
 * Figure 8: FPGA implementations of AlexNet and VGG-16 — performance
 * and CSR (8a), resource utilization and frequency (8b), energy
 * efficiency and CSR (8c).
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "csr/csr.hh"
#include "potential/model.hh"
#include "studies/fpga.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

namespace
{

void
printModel(const std::string &model_name,
           const potential::PotentialModel &model)
{
    auto designs = studies::fpgaDesignsFor(model_name);

    std::cout << "--- " << model_name << " ---\n";
    std::cout << "(a) Performance and CSR\n";
    auto perf =
        csr::csrSeries(studies::fpgaChipGains(designs, false), model,
                       csr::Metric::Throughput);
    Table pt({"Design", "Node", "GOPS", "Gain", "CSR"});
    std::vector<std::size_t> order(designs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a,
                                              std::size_t b) {
        return perf[a].rel_gain < perf[b].rel_gain;
    });
    for (std::size_t i : order) {
        pt.addRow({designs[i].label, fmtNode(designs[i].node_nm),
                   fmtFixed(designs[i].gops, 1),
                   fmtGain(perf[i].rel_gain, 1),
                   fmtGain(perf[i].csr, 2)});
    }
    pt.print(std::cout);

    std::cout << "\n(b) Resource utilization and frequency\n";
    Table ut({"Design", "%LUTs", "%DSPs", "%BRAMs", "Freq [MHz]"});
    for (std::size_t i : order) {
        const auto &d = designs[i];
        ut.addRow({d.label, fmtFixed(d.lut_pct, 0),
                   fmtFixed(d.dsp_pct, 0), fmtFixed(d.bram_pct, 0),
                   fmtFixed(d.freq_mhz, 0)});
    }
    ut.print(std::cout);

    std::cout << "\n(c) Energy efficiency and CSR\n";
    auto eff = csr::csrSeries(studies::fpgaChipGains(designs, true),
                              model, csr::Metric::EnergyEfficiency);
    Table et({"Design", "GOPS/J", "Gain", "CSR"});
    std::sort(order.begin(), order.end(), [&](std::size_t a,
                                              std::size_t b) {
        return eff[a].rel_gain < eff[b].rel_gain;
    });
    for (std::size_t i : order) {
        et.addRow({designs[i].label,
                   fmtFixed(designs[i].gops / designs[i].tdp_w, 1),
                   fmtGain(eff[i].rel_gain, 1),
                   fmtGain(eff[i].csr, 2)});
    }
    et.print(std::cout);

    auto max_gain = [](const std::vector<csr::CsrPoint> &s) {
        double best = 0.0;
        for (const auto &p : s)
            best = std::max(best, p.rel_gain);
        return best;
    };
    std::cout << "\nEndpoints: perf " << fmtGain(max_gain(perf), 1)
              << ", eff " << fmtGain(max_gain(eff), 1) << "\n\n";
}

} // namespace

int
main()
{
    bench::banner("Figure 8", "FPGA CNN implementations (AlexNet and "
                              "VGG-16)");
    bench::note("AlexNet improved ~24x (perf) / ~14x (eff); VGG-16 ~9x "
                "/ ~7x; CSR improved by up to ~6x (emerging domain) but "
                "not between the best designs; 20nm parts beat 28nm.");

    potential::PotentialModel model;
    printModel("AlexNet", model);
    printModel("VGG-16", model);
    return 0;
}
