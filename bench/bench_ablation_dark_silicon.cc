/**
 * @file
 * Ablation: dark silicon — the fraction of fabricated transistors a
 * power envelope lets switch, across nodes and die sizes. The
 * mechanism behind Figure 3d's capped large-chip gains and the
 * "old nodes more appealing under a restricted TDP" observation.
 */

#include <iostream>

#include "bench_common.hh"
#include "potential/model.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;
using potential::ChipSpec;
using potential::PotentialModel;
using namespace accelwall::units::literals;

int
main()
{
    bench::banner("Ablation", "Dark silicon: active transistor "
                              "fraction under fixed envelopes");
    bench::note("active / fabricated transistors at 1 GHz. Leakage of "
                "all fabricated devices charges against the envelope "
                "first; on dense nodes large dies go fully dark.");

    PotentialModel model;
    for (double tdp : {50.0, 200.0, 800.0}) {
        std::cout << "TDP " << fmtFixed(tdp, 0) << "W:\n";
        Table t({"Die \\ Node", "45nm", "28nm", "16nm", "10nm", "7nm",
                 "5nm"});
        for (double die : {50.0, 200.0, 800.0}) {
            std::vector<std::string> row = {fmtFixed(die, 0) + "mm2"};
            for (double node : {45.0, 28.0, 16.0, 10.0, 7.0, 5.0}) {
                ChipSpec spec{units::Nanometers{node},
                              units::SquareMillimeters{die}, 1.0_ghz,
                              units::Watts{tdp}};
                double frac = model.activeTransistors(spec) /
                              model.areaTransistors(spec);
                row.push_back(fmtPercent(frac));
            }
            t.addRow(row);
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    // The crossover the paper describes: for each die size under a
    // tight envelope, which node maximizes efficiency potential?
    std::cout << "Best-efficiency node per die size at 100W:\n";
    Table best({"Die [mm2]", "Best node", "Efficiency vs 45nm"});
    for (double die : {25.0, 100.0, 400.0, 800.0}) {
        double best_eff = 0.0, best_node = 45.0;
        ChipSpec ref{45.0_nm, units::SquareMillimeters{die}, 1.0_ghz,
                     100.0_w};
        for (double node : {45.0, 28.0, 16.0, 10.0, 7.0, 5.0}) {
            ChipSpec spec{units::Nanometers{node},
                          units::SquareMillimeters{die}, 1.0_ghz,
                          100.0_w};
            double eff = model.energyEfficiency(spec).raw();
            if (eff > best_eff) {
                best_eff = eff;
                best_node = node;
            }
        }
        best.addRow({fmtFixed(die, 0), fmtNode(best_node),
                     fmtGain(best_eff /
                                 model.energyEfficiency(ref).raw(),
                             1)});
    }
    best.print(std::cout);
    return 0;
}
