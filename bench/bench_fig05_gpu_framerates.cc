/**
 * @file
 * Figure 5: GPU frame rates for the five headline games — absolute
 * gains and CSR over release dates, with the paper's quadratic trend
 * curves evaluated at the newest GPU.
 */

#include <iostream>

#include "bench_common.hh"
#include "csr/csr.hh"
#include "potential/model.hh"
#include "stats/fits.hh"
#include "studies/gpu.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

namespace
{

/** Fit the paper's quadratic trend and evaluate at the series end. */
void
appRow(Table &t, const std::string &app, bool efficiency,
       const potential::PotentialModel &model)
{
    auto chips =
        studies::gpuAppSeries(app, efficiency, /*high_end_only=*/true);
    auto series = csr::csrSeries(
        chips, model,
        efficiency ? csr::Metric::EnergyEfficiency
                   : csr::Metric::Throughput);

    std::vector<double> years, gains, csrs;
    for (const auto &pt : series) {
        years.push_back(pt.year);
        gains.push_back(pt.rel_gain);
        csrs.push_back(pt.csr);
    }
    auto gain_fit = stats::fitQuadratic(years, gains);
    auto csr_fit = stats::fitQuadratic(years, csrs);
    double first = years.front(), last = years.back();

    // The paper's annotations read off the fitted trend: its value at
    // the newest GPU relative to its value at the oldest.
    double gain_end = gain_fit(last) / std::max(gain_fit(first), 1e-6);
    t.addRow({app, std::to_string(series.size()), fmtGain(gain_end, 2),
              fmtGain(csr_fit(last), 2)});
}

} // namespace

int
main()
{
    bench::banner("Figure 5", "GPU frame rates: absolute gains and CSR "
                              "(quadratic trend at series end)");
    bench::note("paper endpoints — perf: Crysis3 4.15x/0.95, BF4-FHD "
                "4.59x/1.16, BF4-QHD 5.05x/1.14, GTAV 5.07x/1.27, "
                "GTAV-99th 5.91x/1.44; efficiency: 4.71x-7.5x with CSR "
                "0.99-1.47. Our synthetic potential axis is stretched "
                "vs the paper's (see EXPERIMENTS.md): absolute gains "
                "run higher, CSR stays in the same ~1-1.5 band.");

    potential::PotentialModel model;

    std::cout << "(a) Performance (frames/s)\n";
    Table perf({"Application", "GPUs", "Gain @end", "CSR @end"});
    for (const auto &app : studies::headlineApps())
        appRow(perf, app, false, model);
    perf.print(std::cout);

    std::cout << "\n(b) Energy efficiency (frames/J)\n";
    Table eff({"Application", "GPUs", "Gain @end", "CSR @end"});
    for (const auto &app : studies::headlineApps())
        appRow(eff, app, true, model);
    eff.print(std::cout);

    std::cout << "\nPer-GPU series, Crysis 3 FHD (performance):\n";
    auto series = csr::csrSeries(
        studies::gpuAppSeries("Crysis 3 FHD", false), model,
        csr::Metric::Throughput);
    Table t({"GPU", "Year", "Frame gain", "Physical", "CSR"});
    for (const auto &pt : series) {
        t.addRow({pt.name, fmtFixed(pt.year, 1), fmtGain(pt.rel_gain, 2),
                  fmtGain(pt.rel_phy, 2), fmtGain(pt.csr, 2)});
    }
    t.print(std::cout);
    return 0;
}
