/**
 * @file
 * Ablation: the algorithm layer of the specialization stack.
 *
 * Three algorithm-level rewrites at a *fixed* physical budget, i.e.
 * pure CSR moves (Figure 2's top mutable layer):
 *   1. FFT vs naive DFT — the classic O(n log n) vs O(n^2) swap.
 *   2. Winograd F(2x2,3x3) vs direct convolution — the optimization
 *      the paper's FPGA2017* design used.
 *   3. Strength reduction on the IDCT's constant multiplies.
 */

#include <iostream>

#include "aladdin/simulator.hh"
#include "bench_common.hh"
#include "dfgopt/rewrites.hh"
#include "kernels/kernels.hh"
#include "nn/conv_dfg.hh"
#include "nn/layers.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

namespace
{

aladdin::SimResult
runAt(dfg::Graph g, double node, int partition)
{
    aladdin::Simulator sim(std::move(g));
    aladdin::DesignPoint dp;
    dp.node_nm = node;
    dp.partition = partition;
    return sim.run(dp);
}

void
compare(const char *label, dfg::Graph baseline, dfg::Graph improved,
        Table &t)
{
    auto base = runAt(std::move(baseline), 14.0, 16);
    auto better = runAt(std::move(improved), 14.0, 16);
    t.addRow({label, fmtGain(base.runtime_ns / better.runtime_ns, 2),
              fmtGain(base.energy_pj / better.energy_pj, 2),
              fmtGain(static_cast<double>(base.ops) /
                          static_cast<double>(better.ops),
                      2)});
}

} // namespace

int
main()
{
    bench::banner("Ablation", "Algorithm-layer CSR at fixed physical "
                              "budget");
    bench::note("every gain below is CMOS-independent: same node, same "
                "lanes, different algorithm. This is the layer the "
                "paper says emerging domains still mine (Section IV-C) "
                "and confined domains have exhausted (IV-E).");

    Table t({"Rewrite (14nm, P=16)", "Speedup", "Energy saving",
             "Op reduction"});

    // 1. FFT vs naive DFT (16-point, both bit-identical transforms).
    compare("DFT -> FFT (n=16)", kernels::makeDftNaive(16),
            kernels::makeFft(16), t);

    // 2. Direct vs Winograd convolution on a VGG 3x3 layer tile.
    const nn::Layer &conv = nn::vgg16Layers()[3]; // conv2_1
    compare("direct conv -> Winograd F(2x2,3x3)",
            nn::makeLayerDfg(conv, 2, 2, 8),
            nn::makeWinogradConvDfg(conv, 8), t);

    // 3. Strength reduction on the IDCT's constant multiplies.
    dfg::Graph idct = kernels::makeKernel("IDCT");
    dfgopt::RewriteStats stats;
    dfg::Graph reduced = dfgopt::reduceStrength(idct, &stats);
    compare("IDCT const-mults -> shift-add", std::move(idct),
            std::move(reduced), t);

    t.print(std::cout);

    std::cout << "\nStrength reduction note: " << stats.rewritten
              << " multipliers became shift-add pairs (more nodes, "
                 "less energy) — op reduction below 1.0 is expected "
                 "there.\n";
    return 0;
}
