/**
 * @file
 * Table I / Figure 10: the TPU as a worked example of the three chip
 * specialization concepts. Quantifies each concept by toggling it in
 * the systolic-array model on AlexNet and VGG-16, and reproduces the
 * "80x energy efficiency vs CPUs" headline.
 */

#include <iostream>

#include "bench_common.hh"
#include "nn/layers.hh"
#include "tpu/tpu_model.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;
using tpu::CpuConfig;
using tpu::ModelResult;
using tpu::runCpuBaseline;
using tpu::TpuConfig;
using tpu::TpuModel;

namespace
{

void
printNetwork(const char *name, const std::vector<nn::Layer> &layers)
{
    std::cout << "--- " << name << " ---\n";

    TpuModel reference(TpuConfig::tpuV1());
    ModelResult ref = reference.runModel(layers);
    ModelResult cpu = runCpuBaseline(layers);

    // Toggle each concept off to measure its contribution.
    TpuConfig wide = TpuConfig::tpuV1();
    wide.operand_bits = 32; // undo simplification (concept 7)
    TpuConfig small = TpuConfig::tpuV1();
    small.array_dim = 16; // undo partitioning (concepts 8-9)
    TpuConfig no_act = TpuConfig::tpuV1();
    no_act.activation_unit = false; // undo heterogeneity (concept 9)

    Table t({"Configuration", "Time [ms]", "Energy [mJ]", "TOPS",
             "TOPS/W"});
    auto row = [&](const char *label, const ModelResult &r) {
        t.addRow({label, fmtFixed(r.time_ms, 2),
                  fmtFixed(r.energy_mj, 1), fmtFixed(r.tops, 2),
                  fmtFixed(r.tops_per_w, 2)});
    };
    row("TPU v1 (all concepts)", ref);
    row("- simplification (32b ops)",
        TpuModel(wide).runModel(layers));
    row("- partitioning (16x16 array)",
        TpuModel(small).runModel(layers));
    row("- heterogeneity (no act. unit)",
        TpuModel(no_act).runModel(layers));
    row("CPU baseline (FP32 SIMD)", cpu);
    t.print(std::cout);

    std::cout << "TPU vs CPU energy efficiency: "
              << fmtGain(ref.tops_per_w / cpu.tops_per_w, 0)
              << "  (paper: ~80x)\n\n";
}

} // namespace

int
main()
{
    bench::banner("Table I / Figure 10",
                  "TPU: specialization concepts quantified");
    bench::note("simplification = 8-bit MACs + simple DDR3; "
                "partitioning = 256x256 systolic array + banked weight "
                "memory; heterogeneity = on-chip activation/pooling + "
                "software-defined DMA. Peak 92 TOPS; ~80x CPU "
                "energy efficiency.");

    TpuModel tpu(TpuConfig::tpuV1());
    std::cout << "Peak throughput: " << fmtFixed(tpu.peakTops(), 1)
              << " TOPS (TPU v1: 92 TOPS)\n\n";

    printNetwork("AlexNet", nn::alexnetLayers());
    printNetwork("VGG-16", nn::vgg16Layers());
    return 0;
}
