/**
 * @file
 * Figure 16: accelerator energy-efficiency projections — the Figure 15
 * analysis with efficiency gains, smallest Table V dies, and the
 * logarithmic model as the better fit.
 */

#include <iostream>

#include "bench_common.hh"
#include "plot/ascii_chart.hh"
#include "projection/domains.hh"
#include "util/format.hh"

using namespace accelwall;
using projection::Domain;
using projection::DomainStudy;
using projection::projectDomain;

namespace
{

void
printDomain(Domain domain, const char *paper_limits)
{
    DomainStudy study = projectDomain(domain, true);
    const auto &p = study.projection;

    std::cout << "--- " << study.params.name << " ("
              << study.params.platform << ", " << study.params.eff_units
              << ") ---\n";
    std::cout << "points: " << study.points.size() << ", frontier: "
              << p.frontier.size() << "\n";
    std::cout << "linear fit: gain = " << fmtFixed(p.linear.slope, 3)
              << "*phy + " << fmtFixed(p.linear.intercept, 2)
              << " (R^2 " << fmtFixed(p.linear.r2, 3) << ")\n";
    std::cout << "log fit:    gain = " << fmtFixed(p.log.a, 2)
              << "*ln(phy) + " << fmtFixed(p.log.b, 2) << " (R^2 "
              << fmtFixed(p.log.r2, 3) << ")\n";
    std::cout << "CMOS limit at phy = " << fmtGain(p.phy_limit, 1)
              << ": log " << fmtSi(p.log_limit, 1) << ", linear "
              << fmtSi(p.linear_limit, 1) << ' '
              << study.params.eff_units << "\n";
    std::cout << "headroom over best chip: log "
              << fmtGain(p.log_headroom, 1) << ", linear "
              << fmtGain(p.linear_headroom, 1) << "\n";
    auto boot = projection::bootstrapProjection(study.points,
                                                 p.phy_limit);
    std::cout << "bootstrap 10-90% bands (" << boot.usable
              << " resamples): linear [" << fmtSi(boot.linear_limit.lo, 1)
              << ", " << fmtSi(boot.linear_limit.hi, 1) << "], log ["
              << fmtSi(boot.log_limit.lo, 1) << ", "
              << fmtSi(boot.log_limit.hi, 1) << "]\n";
    std::cout << "paper: " << paper_limits << "\n\n";

    plot::ChartConfig cfg;
    cfg.width = 68;
    cfg.height = 16;
    cfg.x_scale = plot::Scale::Log10;
    cfg.y_scale = plot::Scale::Log10;
    cfg.title = study.params.name + " (x: physical potential, y: " +
                study.params.eff_units + ")";
    plot::AsciiChart chart(cfg);

    plot::Series chips{"chips", 'o', {}, {}};
    for (const auto &pt : study.points) {
        chips.xs.push_back(pt.x);
        chips.ys.push_back(pt.y);
    }
    plot::Series lin{"linear projection", 'L', {}, {}};
    plot::Series log_s{"log projection", 'G', {}, {}};
    for (double x = 1.0; x <= p.phy_limit; x *= 1.8) {
        // Skip the fits' non-physical negative region near x=1: a log
        // axis would stretch the whole chart around the clamp.
        if (p.linear(x) > 0.0) {
            lin.xs.push_back(x);
            lin.ys.push_back(p.linear(x));
        }
        if (p.log(x) > 0.0) {
            log_s.xs.push_back(x);
            log_s.ys.push_back(p.log(x));
        }
    }
    plot::Series wall{"CMOS limit", 'W', {p.phy_limit, p.phy_limit},
                      {p.log_limit, p.linear_limit}};
    chart.addSeries(std::move(lin));
    chart.addSeries(std::move(log_s));
    chart.addSeries(std::move(chips));
    chart.addSeries(std::move(wall));
    chart.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    bench::banner("Figure 16", "Accelerator energy-efficiency "
                               "projections to the 5nm wall");
    bench::note("smallest Table V dies for efficiency; the logarithmic "
                "model generally fits the efficiency spaces; "
                "efficiency is not projected to improve at "
                "performance's rate.");

    printDomain(Domain::VideoDecoding,
                "8.9 (log) / 30.3 (linear) MPixels/J; further gains "
                "1.2-14x");
    printDomain(Domain::GpuGraphics,
                "5.9 (log) / 7.3 (linear) Pixels/J; further gains "
                "1.4-1.7x");
    printDomain(Domain::FpgaCnn,
                "85.5 (log) / 111.6 (linear) GOP/J; further gains "
                "2.7-3.5x");
    printDomain(Domain::BitcoinMining,
                "24.4 (log) / 82.1 (linear) GHash/J; further gains "
                "1.4-5x");
    return 0;
}
