/**
 * @file
 * Figure 14: specialization and CMOS accelerator gains — per kernel,
 * the optimal design's gain over the plain 45nm baseline decomposed
 * into CMOS saving / heterogeneity / simplification / partitioning,
 * with the relative gain and CSR, for both performance (14a) and
 * energy efficiency (14b).
 */

#include <cmath>
#include <iostream>

#include "aladdin/attribution.hh"
#include "aladdin/simulator.hh"
#include "bench_common.hh"
#include "kernels/kernels.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;
using aladdin::Attribution;
using aladdin::SweepConfig;
using aladdin::Target;

namespace
{

void
printTarget(Target target)
{
    Table t({"App", "%CMOS", "%Het", "%Simp", "%Part", "Gain", "CSR",
             "Best point"});
    double log_gain_sum = 0.0, log_csr_sum = 0.0;
    double frac_sums[4] = {0, 0, 0, 0};
    int n = 0;

    for (const auto &info : kernels::kernelTable()) {
        aladdin::Simulator sim(kernels::makeKernel(info.abbrev));
        Attribution a =
            aladdin::attribute(sim, SweepConfig::paper(), target);
        t.addRow({info.abbrev, fmtPercent(a.frac_cmos),
                  fmtPercent(a.frac_heterogeneity),
                  fmtPercent(a.frac_simplification),
                  fmtPercent(a.frac_partitioning),
                  fmtGain(a.total_gain, 1), fmtGain(a.csr, 2),
                  a.best.str()});
        log_gain_sum += std::log(a.total_gain);
        log_csr_sum += std::log(a.csr);
        frac_sums[0] += a.frac_cmos;
        frac_sums[1] += a.frac_heterogeneity;
        frac_sums[2] += a.frac_simplification;
        frac_sums[3] += a.frac_partitioning;
        ++n;
    }
    t.addRow({"AVG", fmtPercent(frac_sums[0] / n),
              fmtPercent(frac_sums[1] / n), fmtPercent(frac_sums[2] / n),
              fmtPercent(frac_sums[3] / n),
              fmtGain(std::exp(log_gain_sum / n), 1),
              fmtGain(std::exp(log_csr_sum / n), 2), "-"});
    t.print(std::cout);
}

} // namespace

int
main()
{
    bench::banner("Figure 14", "Specialization and CMOS accelerator "
                               "gains per kernel");
    bench::note("partitioning is the primary performance source; CMOS "
                "saving dominates energy efficiency; simplification "
                "saves energy but not runtime; CSR is low because "
                "CMOS saving and partitioning are CMOS-dependent.");

    std::cout << "(a) Performance\n";
    printTarget(Target::Performance);

    std::cout << "\n(b) Energy efficiency\n";
    printTarget(Target::EnergyEfficiency);
    return 0;
}
