/**
 * @file
 * Figure 3c: transistors x frequency given TDP, per node group.
 * Re-derives the four power-envelope regressions from the synthetic
 * corpus and prints the fitted curves over the figure's TDP axis.
 */

#include <iostream>

#include "bench_common.hh"
#include "chipdb/budget.hh"
#include "chipdb/synth.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main()
{
    bench::banner("Figure 3c", "Transistor budget given frequency and "
                               "TDP, per node group");
    bench::note("paper fits: 10nm-5nm 2.15*TDP^0.402; 22nm-12nm "
                "0.49*TDP^0.557; 32nm-28nm 0.11*TDP^0.729; 55nm-40nm "
                "0.02*TDP^0.869 [B transistors * GHz]");

    auto corpus = chipdb::makeSynthCorpus();
    chipdb::BudgetModel canonical;

    Table t({"Node group", "Fitted coeff", "Fitted exp", "Paper coeff",
             "Paper exp", "R^2"});
    for (const auto &group : canonical.groups()) {
        if (group.min_node_nm > units::Nanometers{55.0})
            continue; // the paper fits only the four modern groups
        auto fit = chipdb::fitTdpModel(corpus, group.min_node_nm,
                                       group.max_node_nm);
        t.addRow({group.label, fmtFixed(fit.coeff, 3),
                  fmtFixed(fit.exponent, 3), fmtFixed(group.coeff, 3),
                  fmtFixed(group.exponent, 3), fmtFixed(fit.r2, 3)});
    }
    t.print(std::cout);

    std::cout << "\nBudget curves over the figure's axis "
                 "[B transistors x GHz]:\n";
    Table c({"TDP [W]", "10nm-5nm", "22nm-12nm", "32nm-28nm",
             "55nm-40nm"});
    using namespace units::literals;
    for (double tdp : {24.0, 60.0, 120.0, 300.0, 600.0}) {
        units::Watts w{tdp};
        auto bghz = [&](units::Nanometers node) {
            return canonical.tdpTransistorGhz(w, node).raw() / 1e9;
        };
        c.addRow({fmtFixed(tdp, 0), fmtFixed(bghz(7.0_nm), 1),
                  fmtFixed(bghz(16.0_nm), 1), fmtFixed(bghz(28.0_nm), 1),
                  fmtFixed(bghz(45.0_nm), 1)});
    }
    c.print(std::cout);
    return 0;
}
