/**
 * @file
 * Figure 7: GPU architecture + CMOS scaling, energy efficiency — the
 * Figure 6 analysis with frames/J as the gain and efficiency potential
 * as the physical axis.
 */

#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.hh"
#include "csr/arch_gains.hh"
#include "potential/model.hh"
#include "studies/gpu.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main()
{
    bench::banner("Figure 7",
                  "Architecture + CMOS scaling: energy efficiency");
    bench::note("same structure as Figure 6 with frames/J: first "
                "architecture on a node dips, CSR band stays ~0.5-2.0 "
                "while absolute efficiency grows an order of magnitude "
                "more.");

    csr::ArchGainSolver solver(5);
    for (const auto &r : studies::gpuBenchmarks())
        solver.addObservation(r.arch, r.app, r.frames_per_joule);
    solver.solve();

    potential::PotentialModel model;
    std::map<std::string, std::pair<double, int>> pots;
    for (const auto &gpu : studies::gpuChips()) {
        auto &[log_sum, n] = pots[gpu.arch];
        log_sum +=
            std::log(
                model.energyEfficiency(studies::gpuSpec(gpu)).raw());
        ++n;
    }
    auto phy = [&](const std::string &arch) {
        const auto &[log_sum, n] = pots.at(arch);
        return std::exp(log_sum / n);
    };

    const std::string base = "Tesla";
    Table t({"Architecture", "Node", "Gain vs Tesla", "Physical",
             "CSR", "Relation"});
    for (const auto &arch : studies::gpuArchs()) {
        double gain = solver.gain(arch.name, base);
        double rel_phy = phy(arch.name) / phy(base);
        t.addRow({arch.name, fmtNode(arch.node_nm), fmtGain(gain, 2),
                  fmtGain(rel_phy, 2), fmtGain(gain / rel_phy, 2),
                  solver.isDirect(arch.name, base)
                      ? "direct (Eq.3)"
                      : "transitive (Eq.4)"});
    }
    t.print(std::cout);
    return 0;
}
