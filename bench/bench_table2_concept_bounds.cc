/**
 * @file
 * Table II: time and space complexity limits of the chip specialization
 * concepts, evaluated symbolically and numerically on the Figure 11
 * example DFG and on representative Table IV kernels.
 */

#include <iostream>

#include "bench_common.hh"
#include "concepts/bounds.hh"
#include "dfg/analysis.hh"
#include "kernels/kernels.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;
using concepts::bound;
using concepts::Component;
using concepts::SpecConcept;

namespace
{

const Component kComponents[] = {Component::Memory,
                                 Component::Communication,
                                 Component::Computation};
const SpecConcept kConcepts[] = {SpecConcept::Simplification,
                                 SpecConcept::Heterogeneity,
                                 SpecConcept::Partitioning};

void
printBounds(const std::string &name, const dfg::Analysis &a)
{
    std::cout << "--- " << name << ": |V|=" << a.num_nodes
              << " |E|=" << a.num_edges << " D=" << a.depth
              << " max|WS|=" << a.max_working_set
              << " |V_IN|=" << a.num_inputs
              << " |V_OUT|=" << a.num_outputs << " ---\n";
    Table t({"Component", "Concept", "Time bound", "Time value",
             "Space bound", "Space value (log2)"});
    for (Component comp : kComponents) {
        for (SpecConcept con : kConcepts) {
            auto b = bound(a, comp, con);
            t.addRow({componentName(comp), conceptName(con),
                      b.time_expr, fmtSi(b.time, 1), b.space_expr,
                      fmtFixed(b.log2_space, 1)});
        }
    }
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    bench::banner("Table II", "Complexity limits of chip specialization "
                              "concepts");
    bench::note("heterogeneity buys depth-bounded time at edge-bounded "
                "(or exponential, for computation LUTs) space; "
                "partitioning is bounded by the largest working set; "
                "simplification minimizes space at serial time.");

    {
        dfg::Graph g = dfg::makeFigure11Example();
        printBounds("Figure 11 example", dfg::analyze(g));
    }
    for (const char *abbrev : {"RED", "NWN", "GMM", "S3D"}) {
        dfg::Graph g = kernels::makeKernel(abbrev);
        printBounds(abbrev, dfg::analyze(g));
    }
    return 0;
}
