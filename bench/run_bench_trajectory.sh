#!/usr/bin/env bash
# Record one point of the repo's perf trajectory.
#
# The single documented entry point for refreshing BENCH_sweep.json,
# BENCH_serve.json and BENCH_chiplet.json at the repo root (all three
# are committed; see README "Benchmarking"). Builds accelwall-bench in
# the default build tree and runs the pinned workloads:
#
#   bench/run_bench_trajectory.sh [--repeat N] [--build-dir DIR]
#
# Defaults: --repeat 7, --build-dir build. Extra flags after `--` are
# passed through to accelwall-bench (e.g. -- --only sweep).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
repeat=7
passthrough=()

while [ $# -gt 0 ]; do
    case "$1" in
        --repeat)
            repeat="$2"
            shift 2
            ;;
        --build-dir)
            build_dir="$2"
            shift 2
            ;;
        --)
            shift
            passthrough=("$@")
            break
            ;;
        *)
            echo "usage: $0 [--repeat N] [--build-dir DIR] [-- bench-flags...]" >&2
            exit 2
            ;;
    esac
done

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
    cmake -S "$repo_root" -B "$build_dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$build_dir" --target accelwall-bench -j "$(nproc)"

# Emit at the repo root so the trajectory files sit next to the code
# they measure and `git log -p BENCH_sweep.json` reads as a history.
cd "$repo_root"
"$build_dir/tools/accelwall-bench" \
    --repeat "$repeat" \
    --sweep-out BENCH_sweep.json \
    --serve-out BENCH_serve.json \
    --chiplet-out BENCH_chiplet.json \
    "${passthrough[@]+"${passthrough[@]}"}"
