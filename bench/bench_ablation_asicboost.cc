/**
 * @file
 * Ablation: the ASICBoost one-time algorithmic gain (Section IV-E).
 *
 * "Aside from ASICBoost that delivered a one-time 20% improvement by
 * parallelizing the inner and outer loops in the algorithm, most
 * miners operate in a brute-force and parallelized manner."
 *
 * We schedule the real double-SHA256 mining DFG (derived from FIPS
 * 180-4, see crypto::Sha256) with and without the shared-schedule
 * optimization across CMOS nodes, showing the gain is algorithmic
 * (CMOS-independent) and non-recurring.
 */

#include <iostream>

#include "aladdin/simulator.hh"
#include "bench_common.hh"
#include "dfg/analysis.hh"
#include "kernels/btc.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main()
{
    bench::banner("Ablation", "ASICBoost: the confined-computation "
                              "ceiling of Bitcoin mining");
    bench::note("the mining DFG is two chained SHA-256 compressions; "
                "its serial 64-round recurrence bounds specialization; "
                "sharing the second chunk's message schedule "
                "(ASICBoost) is the one known algorithmic win, "
                "~15-20%, once.");

    dfg::Graph plain = kernels::makeBtc(false);
    dfg::Graph boosted = kernels::makeBtc(true);
    dfg::Analysis pa = dfg::analyze(plain);
    dfg::Analysis ba = dfg::analyze(boosted);

    std::cout << "plain:     |V|=" << pa.num_nodes << " depth="
              << pa.depth << " compute="
              << plain.countIf(dfg::isCompute) << '\n';
    std::cout << "asicboost: |V|=" << ba.num_nodes << " depth="
              << ba.depth << " compute="
              << boosted.countIf(dfg::isCompute) << '\n';
    double node_saving =
        1.0 - static_cast<double>(boosted.countIf(dfg::isCompute)) /
                  static_cast<double>(plain.countIf(dfg::isCompute));
    std::cout << "compute-node saving: " << fmtPercent(node_saving)
              << " (paper: one-time ~20%)\n\n";

    aladdin::Simulator sim_plain(std::move(plain));
    aladdin::Simulator sim_boost(std::move(boosted));

    Table t({"Node", "Plain energy/nonce [pJ]", "Boost energy [pJ]",
             "Energy saving", "Plain cycles", "Boost cycles"});
    for (double node : {45.0, 22.0, 10.0, 5.0}) {
        aladdin::DesignPoint dp;
        dp.node_nm = node;
        dp.partition = 4;
        dp.simplification = 1;
        auto rp = sim_plain.run(dp);
        auto rb = sim_boost.run(dp);
        t.addRow({fmtNode(node), fmtFixed(rp.energy_pj, 0),
                  fmtFixed(rb.energy_pj, 0),
                  fmtPercent(1.0 - rb.energy_pj / rp.energy_pj),
                  std::to_string(rp.cycles),
                  std::to_string(rb.cycles)});
    }
    t.print(std::cout);

    std::cout << "\nThe saving is CMOS-independent (same percentage on "
                 "every node) and cannot be applied twice: the "
                 "remaining DFG is the fixed SHA-256 recurrence — the "
                 "accelerator wall for a confined computation.\n";
    return 0;
}
