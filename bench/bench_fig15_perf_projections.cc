/**
 * @file
 * Figure 15: accelerator performance projections — for each domain, the
 * Pareto frontier of (physical potential, gain) points, the linear and
 * logarithmic projection fits, and the projected wall at the 5nm limit
 * chip implied by Table V.
 */

#include <iostream>

#include "bench_common.hh"
#include "plot/ascii_chart.hh"
#include "projection/domains.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;
using projection::Domain;
using projection::DomainStudy;
using projection::projectDomain;

namespace
{

void
printDomain(Domain domain, const char *paper_limits)
{
    DomainStudy study = projectDomain(domain, false);
    const auto &p = study.projection;

    std::cout << "--- " << study.params.name << " ("
              << study.params.platform << ", "
              << study.params.perf_units << ") ---\n";
    std::cout << "points: " << study.points.size() << ", frontier: "
              << p.frontier.size() << "\n";
    std::cout << "linear fit: gain = " << fmtFixed(p.linear.slope, 3)
              << "*phy + " << fmtFixed(p.linear.intercept, 2)
              << " (R^2 " << fmtFixed(p.linear.r2, 3) << ")\n";
    std::cout << "log fit:    gain = " << fmtFixed(p.log.a, 2)
              << "*ln(phy) + " << fmtFixed(p.log.b, 2) << " (R^2 "
              << fmtFixed(p.log.r2, 3) << ")\n";
    std::cout << "CMOS limit at phy = " << fmtGain(p.phy_limit, 1)
              << ": log " << fmtSi(p.log_limit, 1) << ", linear "
              << fmtSi(p.linear_limit, 1) << ' '
              << study.params.perf_units << "\n";
    std::cout << "headroom over best chip: log "
              << fmtGain(p.log_headroom, 1) << ", linear "
              << fmtGain(p.linear_headroom, 1) << "\n";
    auto boot = projection::bootstrapProjection(study.points,
                                                 p.phy_limit);
    std::cout << "bootstrap 10-90% bands (" << boot.usable
              << " resamples): linear [" << fmtSi(boot.linear_limit.lo, 1)
              << ", " << fmtSi(boot.linear_limit.hi, 1) << "], log ["
              << fmtSi(boot.log_limit.lo, 1) << ", "
              << fmtSi(boot.log_limit.hi, 1) << "]\n";
    std::cout << "paper: " << paper_limits << "\n\n";

    // Render the figure panel: observed chips, their Pareto frontier,
    // and both projections sampled out to the CMOS limit.
    plot::ChartConfig cfg;
    cfg.width = 68;
    cfg.height = 16;
    cfg.x_scale = plot::Scale::Log10;
    cfg.y_scale = plot::Scale::Log10;
    cfg.title = study.params.name + " (x: physical potential, y: " +
                study.params.perf_units + ")";
    plot::AsciiChart chart(cfg);

    plot::Series chips{"chips", 'o', {}, {}};
    for (const auto &pt : study.points) {
        chips.xs.push_back(pt.x);
        chips.ys.push_back(pt.y);
    }
    plot::Series lin{"linear projection", 'L', {}, {}};
    plot::Series log_s{"log projection", 'G', {}, {}};
    for (double x = 1.0; x <= p.phy_limit; x *= 1.8) {
        // Skip the fits' non-physical negative region near x=1: a log
        // axis would stretch the whole chart around the clamp.
        if (p.linear(x) > 0.0) {
            lin.xs.push_back(x);
            lin.ys.push_back(p.linear(x));
        }
        if (p.log(x) > 0.0) {
            log_s.xs.push_back(x);
            log_s.ys.push_back(p.log(x));
        }
    }
    plot::Series wall{"CMOS limit", 'W', {p.phy_limit, p.phy_limit},
                      {p.log_limit, p.linear_limit}};
    chart.addSeries(std::move(lin));
    chart.addSeries(std::move(log_s));
    chart.addSeries(std::move(chips));
    chart.addSeries(std::move(wall));
    chart.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    bench::banner("Figure 15", "Accelerator performance projections to "
                               "the 5nm wall");
    bench::note("Table V physical parameters; largest dies for "
                "performance. The linear model generally fits the "
                "performance spaces.");

    printDomain(Domain::VideoDecoding,
                "16.1K (log) / 408.7K (linear) MPixels/s; further "
                "gains 3-130x");
    printDomain(Domain::GpuGraphics,
                "1.6K (log) / 2.7K (linear) MPixels/s; further gains "
                "1.4-2.5x");
    printDomain(Domain::FpgaCnn,
                "3K (log) / 4.6K (linear) GOP/s; further gains "
                "2.1-3.4x");
    printDomain(Domain::BitcoinMining,
                "20.2 (log) / 177.7 (linear) GHash/s/mm2; further "
                "gains 2-20x");

    // Table V itself.
    std::cout << "Table V: accelerator-wall physical parameters\n";
    Table t({"Domain", "Platform", "Die [mm2]", "TDP [W]",
             "Freq [MHz]"});
    for (const auto &row : projection::domainTable()) {
        t.addRow({row.name, row.platform,
                  fmtFixed(row.min_die_mm2.raw(), 2) + " / " +
                      fmtFixed(row.max_die_mm2.raw(), 0),
                  fmtFixed(row.tdp_w.raw(), 0),
                  fmtFixed(row.freq_mhz.raw(), 0)});
    }
    t.print(std::cout);
    return 0;
}
