/**
 * @file
 * Figure 3d: physical chip gains — relative throughput and energy
 * efficiency across CMOS nodes, die sizes, and TDP zones at a fixed
 * 1 GHz clock, normalized to a 25mm^2 45nm chip.
 */

#include <iostream>

#include "bench_common.hh"
#include "potential/model.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;
using potential::ChipSpec;
using potential::kUncappedTdp;
using potential::PotentialModel;
using namespace accelwall::units::literals;

namespace
{

const double kNodes[] = { 45.0, 28.0, 16.0, 10.0, 7.0, 5.0 };
const double kDies[] = { 25.0, 50.0, 100.0, 200.0, 400.0, 800.0 };

void
printGrid(const PotentialModel &model, bool efficiency,
          units::Watts tdp_w, const char *zone)
{
    ChipSpec ref{45.0_nm, 25.0_mm2, 1.0_ghz, kUncappedTdp};
    std::cout << (efficiency ? "Energy efficiency" : "Throughput")
              << " gains, TDP zone: " << zone << "\n";
    Table t({"Die \\ Node", "45nm", "28nm", "16nm", "10nm", "7nm",
             "5nm"});
    for (double die : kDies) {
        std::vector<std::string> row = {fmtFixed(die, 0) + "mm2"};
        for (double node : kNodes) {
            ChipSpec spec{units::Nanometers{node},
                          units::SquareMillimeters{die}, 1.0_ghz, tdp_w};
            double gain = efficiency ? model.efficiencyGain(spec, ref)
                                     : model.throughputGain(spec, ref);
            row.push_back(fmtGain(gain, 1));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    bench::banner("Figure 3d", "Physical chip gains vs node, die size, "
                               "and power envelope (1 GHz)");
    bench::note("anchor: an 800mm2 5nm chip is ~1000x the 25mm2 45nm "
                "baseline unconstrained and drops ~70% to ~300x under "
                "an 800W envelope; small chips favor efficiency; power "
                "constraints cap large-chip gains.");

    PotentialModel model;
    printGrid(model, false, kUncappedTdp, "unconstrained");
    printGrid(model, false, 800.0_w, "800W");
    printGrid(model, false, 200.0_w, "200W");
    printGrid(model, false, 50.0_w, "50W");
    printGrid(model, true, kUncappedTdp, "unconstrained");
    printGrid(model, true, 200.0_w, "200W");

    ChipSpec ref{45.0_nm, 25.0_mm2, 1.0_ghz, kUncappedTdp};
    ChipSpec big_unc{5.0_nm, 800.0_mm2, 1.0_ghz, kUncappedTdp};
    ChipSpec big_cap{5.0_nm, 800.0_mm2, 1.0_ghz, 800.0_w};
    double unc = model.throughputGain(big_unc, ref);
    double cap = model.throughputGain(big_cap, ref);
    std::cout << "Anchor check: 800mm2 5nm = " << fmtGain(unc, 0)
              << " unconstrained, " << fmtGain(cap, 0)
              << " at 800W (drop "
              << fmtPercent(1.0 - cap / unc) << "; paper: ~1000x -> "
              << "~300x, ~70%)\n";
    return 0;
}
