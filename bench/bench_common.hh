/**
 * @file
 * Shared presentation helpers for the figure-regeneration benches. Each
 * bench prints the same rows/series the corresponding paper figure
 * plots, with a banner tying it back to the paper.
 */

#ifndef ACCELWALL_BENCH_COMMON_HH
#define ACCELWALL_BENCH_COMMON_HH

#include <iostream>
#include <string>

namespace accelwall::bench
{

/** Print a figure banner: id, title, and what the paper reported. */
inline void
banner(const std::string &figure, const std::string &title)
{
    std::string head = "=== " + figure + ": " + title + " ===";
    std::cout << '\n'
              << std::string(head.size(), '=') << '\n'
              << head << '\n'
              << std::string(head.size(), '=') << "\n\n";
}

/** Print a paper-reference note under the banner. */
inline void
note(const std::string &text)
{
    std::cout << "paper: " << text << "\n\n";
}

} // namespace accelwall::bench

#endif // ACCELWALL_BENCH_COMMON_HH
