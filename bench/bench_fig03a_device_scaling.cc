/**
 * @file
 * Figure 3a: CMOS device scaling, 45nm..5nm — relative leakage power,
 * capacitance, VDD, frequency, and dynamic power per node.
 */

#include <iostream>

#include "bench_common.hh"
#include "cmos/scaling.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main()
{
    bench::banner("Figure 3a", "CMOS device scaling (relative to 45nm)");
    bench::note("Stillmaker & Baas scaling equations + IRDS 5nm; all "
                "device quantities improve monotonically toward 5nm.");

    const auto &scaling = cmos::ScalingTable::instance();
    Table t({"Node", "Leakage power", "Capacitance", "VDD",
             "Frequency gain", "Dynamic power"});
    for (double nm : {45.0, 28.0, 16.0, 10.0, 7.0, 5.0}) {
        units::Nanometers node{nm};
        t.addRow({fmtNode(nm),
                  fmtFixed(scaling.leakagePower(node), 3),
                  fmtFixed(scaling.capacitanceRel(node), 3),
                  fmtFixed(scaling.vddRel(node), 3),
                  fmtGain(scaling.frequencyGain(node), 2),
                  fmtFixed(scaling.dynamicPower(node), 3)});
    }
    t.print(std::cout);

    std::cout << "\nFull tabulated range (oldest to newest):\n";
    Table full({"Node", "VDD [V]", "Gate delay", "Cap/gate",
                "Leak/transistor", "Dyn energy/op", "Density gain"});
    for (units::Nanometers node : scaling.nodes()) {
        const auto &p = scaling.at(node);
        full.addRow({fmtNode(node.raw()), fmtFixed(p.vdd.raw(), 2),
                     fmtFixed(p.gate_delay, 2),
                     fmtFixed(p.capacitance, 2),
                     fmtFixed(p.leakage, 3),
                     fmtFixed(scaling.dynamicEnergy(node), 3),
                     fmtGain(scaling.densityGain(node), 2)});
    }
    full.print(std::cout);
    return 0;
}
