/**
 * @file
 * Ablation: design-space exploration of the two video-decoder pipeline
 * extremes (Section IV-A's domain through the Section VI flow).
 *
 * The IDCT stage is embarrassingly parallel; the entropy-decode stage
 * is strictly serial. Their optimal accelerators and attainable gains
 * differ by orders of magnitude — the structural reason decoder ASICs
 * plateau: once the parallel stages are saturated, the serial
 * bitstream decode pins the pipeline, and no transistor budget fixes
 * a dependence chain.
 */

#include <iostream>

#include "aladdin/attribution.hh"
#include "aladdin/simulator.hh"
#include "aladdin/sweep.hh"
#include "bench_common.hh"
#include "dfg/analysis.hh"
#include "kernels/kernels.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main()
{
    bench::banner("Ablation", "Video decoder pipeline extremes: IDCT "
                              "vs entropy decode");
    bench::note("Amdahl at the DFG level: partitioning buys IDCT "
                "orders of magnitude, the serial entropy decoder "
                "almost nothing — only chaining (heterogeneity) on "
                "faster nodes moves it.");

    Table t({"Kernel", "Depth", "max|WS|", "Best perf point",
             "Perf gain", "%Part", "%Het", "Best eff point",
             "Eff gain"});
    for (const char *abbrev : {"IDCT", "ENT"}) {
        aladdin::Simulator sim(kernels::makeKernel(abbrev));
        const auto &a = sim.analysis();
        auto perf = aladdin::attribute(sim, aladdin::SweepConfig::paper(),
                                       aladdin::Target::Performance);
        auto eff = aladdin::attribute(
            sim, aladdin::SweepConfig::paper(),
            aladdin::Target::EnergyEfficiency);
        t.addRow({abbrev, std::to_string(a.depth),
                  std::to_string(a.max_working_set), perf.best.str(),
                  fmtGain(perf.total_gain, 1),
                  fmtPercent(perf.frac_partitioning),
                  fmtPercent(perf.frac_heterogeneity), eff.best.str(),
                  fmtGain(eff.total_gain, 1)});
    }
    t.print(std::cout);

    // The pipeline view: a decoder at fixed area must split lanes
    // between stages; the serial stage caps the chip.
    std::cout << "\nPipeline runtime (one macroblock batch, 5nm, "
                 "P=64):\n";
    Table p({"Stage", "Runtime [us]", "Share"});
    double total = 0.0;
    double times[2];
    const char *names[2] = {"IDCT", "ENT"};
    for (int i = 0; i < 2; ++i) {
        aladdin::Simulator sim(kernels::makeKernel(names[i]));
        aladdin::DesignPoint dp;
        dp.node_nm = 5.0;
        dp.partition = 64;
        times[i] = sim.run(dp).runtime_ns / 1e3;
        total += times[i];
    }
    for (int i = 0; i < 2; ++i)
        p.addRow({names[i], fmtFixed(times[i], 3),
                  fmtPercent(times[i] / total)});
    p.print(std::cout);
    std::cout << "\nThe serial stage dominates: the decoder domain's "
                 "CSR plateau (Fig. 4) has a dataflow-level cause.\n";
    return 0;
}
