/**
 * @file
 * Scenario: an ASIC team audits its product roadmap. Given four
 * shipped generations of a hypothetical inference ASIC, split each
 * generation's headline gain into CMOS-driven and specialization-driven
 * parts (Eq. 2) and project the product line to the 5nm wall — the
 * analysis Sections IV and VII run on real products.
 *
 * Build & run:  ./build/examples/asic_roadmap_audit
 */

#include <iostream>
#include <vector>

#include "csr/csr.hh"
#include "potential/model.hh"
#include "projection/projection.hh"
#include "stats/pareto.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;
using namespace accelwall::units::literals;

int
main()
{
    potential::PotentialModel model;

    // Four generations of a hypothetical 75W inference ASIC: node, die,
    // clock, TDP, and measured throughput (TOPS).
    std::vector<csr::ChipGain> roadmap = {
        {"v1", {28.0_nm, 300.0_mm2, 0.8_ghz, 75.0_w}, 20.0, 2016},
        {"v2", {16.0_nm, 330.0_mm2, 1.0_ghz, 75.0_w}, 55.0, 2018},
        {"v3", {10.0_nm, 350.0_mm2, 1.1_ghz, 75.0_w}, 110.0, 2020},
        {"v4", {7.0_nm, 380.0_mm2, 1.2_ghz, 75.0_w}, 170.0, 2022},
    };

    auto series =
        csr::csrSeries(roadmap, model, csr::Metric::Throughput);

    std::cout << "Roadmap audit (normalized to v1):\n";
    Table t({"Gen", "TOPS", "Gain", "CMOS-driven", "CSR"});
    for (std::size_t i = 0; i < series.size(); ++i) {
        t.addRow({series[i].name, fmtFixed(roadmap[i].gain, 0),
                  fmtGain(series[i].rel_gain, 2),
                  fmtGain(series[i].rel_phy, 2),
                  fmtGain(series[i].csr, 2)});
    }
    t.print(std::cout);

    // If CSR is flat, the roadmap is riding CMOS scaling; the wall is
    // whatever a 5nm part affords.
    std::vector<stats::Point2> points;
    for (std::size_t i = 0; i < series.size(); ++i)
        points.push_back({series[i].rel_phy, roadmap[i].gain});

    auto project = [&](double die_mm2) {
        potential::ChipSpec wall_chip{
            5.0_nm, units::SquareMillimeters{die_mm2}, 1.2_ghz, 75.0_w};
        double phy_limit = model.throughput(wall_chip) /
                           model.throughput(roadmap.front().spec);
        auto proj = projection::projectFrontier(points, phy_limit);
        std::cout << "5nm wall at " << fmtFixed(die_mm2, 0)
                  << "mm2 / 75W / 1.2GHz: linear "
                  << fmtFixed(proj.linear_limit, 0) << " TOPS ("
                  << fmtGain(proj.linear_headroom, 1)
                  << " over v4), log " << fmtFixed(proj.log_limit, 0)
                  << " TOPS (" << fmtGain(proj.log_headroom, 1)
                  << ")\n";
    };

    std::cout << "\nDie sizing at the wall matters: at 75W a big 5nm "
                 "die leaks away its envelope (dark silicon), so the "
                 "naive 400mm2 scale-up projects no headroom while a "
                 "right-sized 200mm2 die still does.\n";
    project(400.0);
    project(200.0);
    std::cout << "After the wall, gains must come from specialization "
                 "return alone.\n";
    return 0;
}
