/**
 * @file
 * Scenario: the Bitcoin mining arms race, end to end (Section IV-D).
 *
 * First actually mines: double-SHA256 (crypto::Sha256, FIPS 180-4
 * bit-accurate) over a toy header until a share with enough leading
 * zero bits appears — the real workload the ASICs in the study run.
 * Then replays the hardware eras: for each chip in the mining dataset,
 * the expected time and energy to find a block at a given difficulty,
 * showing why the economics forced CPU -> GPU -> FPGA -> ASIC and why
 * the energy term now dominates.
 *
 * Build & run:  ./build/examples/mining_eras [difficulty_bits]
 */

#include <array>
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>

#include "crypto/sha256.hh"
#include "studies/bitcoin.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main(int argc, char **argv)
{
    int difficulty_bits = argc > 1 ? std::atoi(argv[1]) : 40;

    // --- 1. Mine for real (easy share: 18 leading zero bits). ------
    std::array<std::uint8_t, 80> header{};
    for (std::size_t i = 0; i < header.size(); ++i)
        header[i] = static_cast<std::uint8_t>(i * 37 + 11);

    auto t0 = std::chrono::steady_clock::now();
    const int share_bits = 18;
    std::uint32_t nonce = 0;
    while (crypto::mineLeadingZeroBits(header, nonce) < share_bits)
        ++nonce;
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    double host_hps = (nonce + 1) / std::max(secs, 1e-9);
    std::cout << "Mined a " << share_bits << "-bit share at nonce "
              << nonce << " (" << fmtSi(host_hps, 1)
              << " double-hashes/s on this host)\n\n";

    // --- 2. Replay the hardware eras at real difficulty. -----------
    // Expected hashes to find a block with `difficulty_bits` leading
    // zero bits: 2^bits.
    double expected_hashes = std::exp2(difficulty_bits);
    std::cout << "Expected hashes per block at " << difficulty_bits
              << " bits: " << fmtSi(expected_hashes, 1) << "\n\n";

    Table t({"Chip", "Platform", "GH/s", "Time/block", "Energy/block",
             "GH/J"});
    for (const auto &chip : studies::miningChips()) {
        double seconds = expected_hashes / (chip.ghs * 1e9);
        double joules = seconds * chip.watts;
        std::string time_str =
            seconds > 3.15e7 * 2
                ? fmtFixed(seconds / 3.15e7, 1) + " years"
                : (seconds > 7200.0
                       ? fmtFixed(seconds / 3600.0, 1) + " hours"
                       : fmtFixed(seconds, 1) + " s");
        t.addRow({chip.label, chipdb::platformName(chip.platform),
                  fmtFixed(chip.ghs, 3), time_str,
                  fmtSi(joules, 1) + " J",
                  fmtFixed(chip.ghs / chip.watts, 3)});
    }
    t.print(std::cout);

    std::cout << "\nEach platform transition bought a non-recurring "
                 "CSR boost (Fig. 9); within the ASIC era only CMOS "
                 "kept the energy per block falling — the confined "
                 "computation has nowhere else to go.\n";
    return 0;
}
