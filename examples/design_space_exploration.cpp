/**
 * @file
 * Scenario: explore the accelerator design space for one of the
 * Table IV kernels (Section VI's flow). Sweeps the Table III grid,
 * prints the runtime-power Pareto frontier, the best-performance and
 * best-efficiency designs, and the Figure 14 gain attribution.
 *
 * Build & run:  ./build/examples/design_space_exploration [KERNEL]
 * where KERNEL is a Table IV abbreviation (default S3D).
 */

#include <iostream>
#include <string>

#include "aladdin/attribution.hh"
#include "aladdin/simulator.hh"
#include "aladdin/sweep.hh"
#include "kernels/kernels.hh"
#include "stats/pareto.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main(int argc, char **argv)
{
    std::string kernel = argc > 1 ? argv[1] : "S3D";
    dfg::Graph g = kernels::makeKernel(kernel);
    std::cout << "Kernel " << kernel << ": " << g.numNodes()
              << " nodes, " << g.numEdges() << " edges\n\n";

    aladdin::Simulator sim(std::move(g));
    auto points = aladdin::runSweep(sim, aladdin::SweepConfig::paper());

    // Runtime-power Pareto frontier (Figure 13's plane): minimize both.
    std::vector<stats::Point2> rp;
    for (const auto &p : points)
        rp.push_back({p.res.runtime_ns, -p.res.power_mw});
    auto frontier = stats::paretoFrontier(rp);

    std::cout << "Runtime-power Pareto frontier (" << frontier.size()
              << " of " << points.size() << " design points):\n";
    Table t({"Runtime [us]", "Power [mW]"});
    for (const auto &p : frontier)
        t.addRow({fmtFixed(p.x / 1e3, 3), fmtFixed(-p.y, 2)});
    t.print(std::cout);

    auto report = [&](const char *what, std::size_t idx) {
        const auto &p = points[idx];
        std::cout << what << ": " << p.dp.str() << " — "
                  << fmtFixed(p.res.runtime_ns / 1e3, 3) << "us, "
                  << fmtFixed(p.res.power_mw, 2) << "mW, "
                  << fmtSi(p.res.efficiency_opj, 2) << " OP/J, "
                  << p.res.fused_ops << " fused ops\n";
    };
    std::cout << '\n';
    report("Best performance", aladdin::bestPerformance(points));
    report("Best efficiency ", aladdin::bestEfficiency(points));

    std::cout << "\nGain attribution (Figure 14):\n";
    Table at({"Target", "%CMOS", "%Het", "%Simp", "%Part", "Gain",
              "CSR"});
    for (auto target : {aladdin::Target::Performance,
                        aladdin::Target::EnergyEfficiency}) {
        auto a = aladdin::attribute(sim, aladdin::SweepConfig::paper(),
                                    target);
        at.addRow({aladdin::targetName(target),
                   fmtPercent(a.frac_cmos),
                   fmtPercent(a.frac_heterogeneity),
                   fmtPercent(a.frac_simplification),
                   fmtPercent(a.frac_partitioning),
                   fmtGain(a.total_gain, 1), fmtGain(a.csr, 2)});
    }
    at.print(std::cout);
    return 0;
}
