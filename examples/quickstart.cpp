/**
 * @file
 * Quickstart: the library in five minutes.
 *
 *  1. Ask the CMOS potential model what physics alone explains.
 *  2. Compute a Chip Specialization Return from two chip generations.
 *  3. Build a tiny dataflow graph and schedule it on two accelerator
 *     design points.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "aladdin/simulator.hh"
#include "csr/csr.hh"
#include "dfg/analysis.hh"
#include "dfg/graph.hh"
#include "potential/model.hh"
#include "util/format.hh"

using namespace accelwall;

int
main()
{
    // --- 1. Physical potential -----------------------------------
    // How much faster should a chip be on physics alone? Describe both
    // generations by node, die size, clock, and TDP. The fields are
    // dimensionally typed: swapping the nm and mm² arguments is a
    // compile error, not a silently wrong projection.
    using namespace units::literals;
    potential::PotentialModel model;
    potential::ChipSpec old_chip{65.0_nm, 100.0_mm2, 0.8_ghz, 60.0_w};
    potential::ChipSpec new_chip{16.0_nm, 100.0_mm2, 1.2_ghz, 60.0_w};

    double phy = model.throughputGain(new_chip, old_chip);
    std::cout << "CMOS-driven throughput potential: " << fmtGain(phy, 1)
              << '\n';

    // --- 2. Chip Specialization Return (Eq. 1-2) ------------------
    // Suppose the products actually sped up 9x end to end. How much of
    // that is design skill rather than transistors?
    csr::ChipGain v1{"gen1", old_chip, 100.0, 2012};
    csr::ChipGain v2{"gen2", new_chip, 900.0, 2017};
    double csr = csr::csrRatio(v2, v1, model, csr::Metric::Throughput);
    std::cout << "End-to-end gain 9.0x  =>  CSR " << fmtGain(csr, 2)
              << " (the CMOS-independent share)\n\n";

    // --- 3. A DFG on the pre-RTL accelerator model ----------------
    // The paper's Figure 11 example: 3 inputs, 2 compute stages, 2
    // outputs.
    dfg::Graph g = dfg::makeFigure11Example();
    dfg::Analysis a = dfg::analyze(g);
    std::cout << "Figure 11 DFG: |V|=" << a.num_nodes << " |E|="
              << a.num_edges << " depth=" << a.depth << " max|WS|="
              << a.max_working_set << '\n';

    aladdin::Simulator sim(std::move(g));

    aladdin::DesignPoint baseline; // 45nm, no partitioning
    baseline.chaining = false;
    aladdin::DesignPoint tuned;
    tuned.node_nm = 5.0;
    tuned.partition = 4;
    tuned.simplification = 9;

    auto r0 = sim.run(baseline);
    auto r1 = sim.run(tuned);
    std::cout << "baseline (" << baseline.str() << "): "
              << fmtFixed(r0.runtime_ns, 1) << "ns, "
              << fmtFixed(r0.energy_pj, 2) << "pJ\n";
    std::cout << "tuned    (" << tuned.str() << "): "
              << fmtFixed(r1.runtime_ns, 1) << "ns, "
              << fmtFixed(r1.energy_pj, 2) << "pJ  ("
              << fmtGain(r0.runtime_ns / r1.runtime_ns, 1)
              << " faster, "
              << fmtGain(r0.energy_pj / r1.energy_pj, 1)
              << " less energy)\n";
    return 0;
}
