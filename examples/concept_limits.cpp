/**
 * @file
 * Scenario: before committing to a specialization strategy, check what
 * Section V's theory allows for your workload. Builds a kernel's DFG,
 * evaluates the Table II bounds for every (component, concept) pair,
 * and contrasts the theoretical partitioning limit with what the
 * simulator actually saturates at.
 *
 * Build & run:  ./build/examples/concept_limits [KERNEL]
 */

#include <iostream>
#include <string>

#include "aladdin/simulator.hh"
#include "concepts/bounds.hh"
#include "dfg/analysis.hh"
#include "kernels/kernels.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main(int argc, char **argv)
{
    std::string kernel = argc > 1 ? argv[1] : "FFT";
    dfg::Graph g = kernels::makeKernel(kernel);
    dfg::Analysis a = dfg::analyze(g);

    std::cout << "Kernel " << kernel << ": |V|=" << a.num_nodes
              << " |E|=" << a.num_edges << " D=" << a.depth
              << " max|WS|=" << a.max_working_set << "\n\n";

    std::cout << "Table II bounds:\n";
    Table t({"Component", "Concept", "Time", "Space (log2)"});
    for (auto comp : {concepts::Component::Memory,
                      concepts::Component::Communication,
                      concepts::Component::Computation}) {
        for (auto con : {concepts::SpecConcept::Simplification,
                         concepts::SpecConcept::Heterogeneity,
                         concepts::SpecConcept::Partitioning}) {
            auto b = concepts::bound(a, comp, con);
            t.addRow({concepts::componentName(comp),
                      concepts::conceptName(con),
                      b.time_expr + " = " + fmtSi(b.time, 1),
                      b.space_expr + " = " +
                          fmtFixed(b.log2_space, 1)});
        }
    }
    t.print(std::cout);

    // Theory says partitioning beyond max|WS| is wasted. Demonstrate:
    // runtime stops improving once lanes exceed the largest working
    // set.
    aladdin::Simulator sim(kernels::makeKernel(kernel));
    std::cout << "\nPartitioning saturation (theory: max|WS| = "
              << a.max_working_set << "):\n";
    Table s({"Lanes", "Runtime [us]", "Speedup"});
    double base = 0.0;
    for (int p = 1; p <= 1 << 14; p *= 4) {
        aladdin::DesignPoint dp;
        dp.partition = p;
        double rt = sim.run(dp).runtime_ns;
        if (base == 0.0)
            base = rt;
        s.addRow({std::to_string(p), fmtFixed(rt / 1e3, 3),
                  fmtGain(base / rt, 1)});
    }
    s.print(std::cout);
    return 0;
}
