/**
 * @file
 * Scenario: size a TPU-like inference accelerator for a latency
 * budget. Sweeps the systolic-array dimension and weight bandwidth for
 * AlexNet under a per-image latency target, reporting where the Table I
 * concepts stop paying — the design-time use of the Section V models.
 *
 * Build & run:  ./build/examples/tpu_sizing [latency_ms]
 */

#include <cstdlib>
#include <iostream>

#include "nn/layers.hh"
#include "roofline/roofline.hh"
#include "tpu/tpu_model.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace accelwall;

int
main(int argc, char **argv)
{
    double latency_ms = argc > 1 ? std::atof(argv[1]) : 2.5;
    const auto &net = nn::alexnetLayers();

    std::cout << "Sizing for AlexNet at <= " << fmtFixed(latency_ms, 2)
              << " ms/image\n\n";

    Table t({"Array", "BW [GB/s]", "Peak TOPS", "Latency [ms]",
             "Energy [mJ]", "Meets budget", "Binding resource"});
    for (int dim : {32, 64, 128, 256, 512}) {
        for (double bw : {15.0, 30.0, 120.0}) {
            tpu::TpuConfig cfg = tpu::TpuConfig::tpuV1();
            cfg.array_dim = dim;
            cfg.weight_bw_gbs = bw;
            tpu::TpuModel model(cfg);
            auto res = model.runModel(net);

            // Binding resource via the roofline: if the network's
            // aggregate intensity is below the ridge, bandwidth binds.
            auto roof = roofline::machineRoofline(cfg);
            auto place = roofline::placeModel(roof, "AlexNet", net,
                                              cfg.operand_bits);
            t.addRow({std::to_string(dim) + "x" + std::to_string(dim),
                      fmtFixed(bw, 0), fmtFixed(model.peakTops(), 1),
                      fmtFixed(res.time_ms, 2),
                      fmtFixed(res.energy_mj, 1),
                      res.time_ms <= latency_ms ? "yes" : "no",
                      place.regime ==
                              roofline::Regime::ComputeBound
                          ? "compute"
                          : "weight bandwidth"});
        }
    }
    t.print(std::cout);

    std::cout << "\nReading: past the ridge, growing the array "
                 "(partitioning) stops paying — AlexNet's FC-heavy "
                 "profile is weight-bandwidth bound, so memory "
                 "specialization (Table I's banked weight FIFO, or "
                 "more DDR3 channels) is the lever, not more MACs.\n";
    return 0;
}
