#!/usr/bin/env bash
# The CI gate: every static and dynamic check the repo owns, run as
# named stages whose exit codes are AGGREGATED into one-screen summary
# (the old run_static_checks.sh died at the first failure, which hid
# every finding after it). Stages:
#
#   build / ctest         plain build + the full tier-1 suite (includes
#                         the lint, lint_model, lint_source, lint_iface
#                         ctest entries and their seeded-broken twins)
#   ctest chaos           the network-chaos label on its own: socket
#                         fault sites, resilient client, chaosproxy
#                         smoke
#   ctest lint/golden     the static-analysis and golden-pin labels by
#                         name, plus cli_version: a regression in any
#                         of them is named in the summary, and the
#                         I008 rule holds this stage to the label set
#                         declared in the CMakeLists
#   lint --strict         accelwall-lint over all four domains (dfg
#                         graphs, model inputs, repo sources, external
#                         interfaces) with warnings escalated
#   lint --strict iface   the interface-drift domain alone, so a drift
#                         finding is named in the summary rather than
#                         folded into the all-domain stage
#   headercheck           one generated TU per public src/ header:
#                         self-containment + include guards, compiled
#   asan / ubsan          sanitizer builds + full ctest
#   tsan                  ThreadSanitizer build running the parallel,
#                         robustness, serve, and sweepdiff labels
#   asan loadgen smoke    instrumented daemon + load generator, mixed
#                         closed-loop workload, graceful drain
#   asan bench smoke      both sweep engines + the serve mix under ASan
#   clang thread-safety   -Werror=thread-safety build (Clang only; the
#                         capability annotations compile away on gcc)
#   clang-tidy            the ACCELWALL_TIDY preset — tidy runs
#                         alongside every src/ compile
#
# Every stage is timed and logged: stdout+stderr stream to the console
# AND to <prefix>-logs/<stage-slug>.log, and the run writes
# <prefix>-logs/gate_summary.json — schema "accelwall-gate-summary-v1",
# one record per stage with {stage, status, seconds, log} plus the
# overall gate verdict — for machine consumption (the
# golden_gate_summary_schema ctest pins that shape).
#
# ACCELWALL_GATE_DRYRUN=1 records every stage as SKIP without running
# it; the summary JSON is still written, which is how the golden test
# exercises the schema in milliseconds.
#
# The last two stages SKIP with a notice when clang++ / clang-tidy are
# not installed. Usage: tools/ci_gate.sh [build-dir-prefix]; trees land
# in <prefix>, <prefix>-asan, <prefix>-ubsan, <prefix>-tsan,
# <prefix>-clang, <prefix>-tidy (default prefix: build-checks). Exits
# nonzero when any stage failed.

set -uo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-checks}"
jobs="$(nproc 2>/dev/null || echo 4)"
dryrun="${ACCELWALL_GATE_DRYRUN:-0}"
logdir="${prefix}-logs"
mkdir -p "${logdir}"

gate_rc=0
summary=()
# Parallel arrays feeding gate_summary.json. Stage names must stay
# free of double quotes and backslashes — they are emitted into JSON
# verbatim.
json_stage=()
json_status=()
json_seconds=()
json_log=()

# slug <name>: a filesystem-safe stage name for the per-stage log.
slug() {
    echo "$1" | tr -c 'a-zA-Z0-9' '-' | tr -s '-' | sed 's/^-//;s/-$//'
}

record() {
    local name="$1" status="$2" seconds="$3" log="$4"
    json_stage+=("${name}")
    json_status+=("${status}")
    json_seconds+=("${seconds}")
    json_log+=("${log}")
}

# stage <name> <command...>: run, time, log, record PASS/FAIL, keep
# going. Under ACCELWALL_GATE_DRYRUN=1 the command is not run and the
# stage records as SKIP.
stage() {
    local name="$1"
    shift
    echo
    echo "=== ${name} ==="
    if [ "${dryrun}" = "1" ]; then
        summary+=("SKIP  ${name} (dryrun)")
        record "${name}" "SKIP" 0 ""
        return
    fi
    local log="${logdir}/$(slug "${name}").log"
    local start rc
    start="$(date +%s)"
    "$@" 2>&1 | tee "${log}"
    rc="${PIPESTATUS[0]}"
    local seconds="$(( $(date +%s) - start ))"
    if [ "${rc}" -eq 0 ]; then
        summary+=("PASS  ${name} (${seconds}s)")
        record "${name}" "PASS" "${seconds}" "${log}"
    else
        summary+=("FAIL  ${name} (${seconds}s)")
        record "${name}" "FAIL" "${seconds}" "${log}"
        gate_rc=1
    fi
}

skip() {
    echo
    echo "=== ${1}: skipped (${2}) ==="
    summary+=("SKIP  ${1} (${2})")
    record "${1}" "SKIP" 0 ""
}

configure_and_build() {
    local dir="$1"
    shift
    cmake -B "${dir}" -S . "$@" >/dev/null &&
        cmake --build "${dir}" -j "${jobs}"
}

run_ctest() {
    local dir="$1" labels="${2:-}"
    if [ -n "${labels}" ]; then
        ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" \
            -L "${labels}"
    else
        ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
    fi
}

write_summary_json() {
    local out="${logdir}/gate_summary.json"
    local gate="PASS"
    [ "${gate_rc}" -ne 0 ] && gate="FAIL"
    {
        echo "{"
        echo "  \"schema\": \"accelwall-gate-summary-v1\","
        echo "  \"dryrun\": $([ "${dryrun}" = "1" ] && echo true ||
            echo false),"
        echo "  \"gate\": \"${gate}\","
        echo "  \"stages\": ["
        local i last=$(( ${#json_stage[@]} - 1 ))
        for i in "${!json_stage[@]}"; do
            local comma=","
            [ "${i}" -eq "${last}" ] && comma=""
            printf '    {"stage": "%s", "status": "%s",' \
                "${json_stage[$i]}" "${json_status[$i]}"
            printf ' "seconds": %s, "log": "%s"}%s\n' \
                "${json_seconds[$i]}" "${json_log[$i]}" "${comma}"
        done
        echo "  ]"
        echo "}"
    } > "${out}"
    echo "summary json: ${out}"
}

stage "build" configure_and_build "${prefix}"
stage "ctest (tier-1)" run_ctest "${prefix}"
# The chaos label (socket fault sites, resilient client, chaosproxy
# smoke) is part of tier-1; re-run it as its own stage so a fault-
# injection regression is named in the summary, not buried.
stage "ctest (chaos)" run_ctest "${prefix}" "chaos"
# Same reasoning for the static-analysis and golden-pin labels; this
# stage is also what satisfies lint rule I008 (every declared ctest
# label must be selected by name in some gate stage).
stage "ctest (lint|golden|cli_version)" \
    run_ctest "${prefix}" "lint|golden|cli_version"
# The chiplet label (yield/cost model, partitioned sweep,
# cost-normalized CSR golden) named the same way for the same reason.
stage "ctest (chiplet)" run_ctest "${prefix}" "chiplet"
stage "lint --strict (dfg+model+source+iface)" \
    "${prefix}/tools/accelwall-lint" --strict
stage "lint --strict (iface)" \
    "${prefix}/tools/accelwall-lint" --strict --domain iface
stage "headercheck" \
    cmake --build "${prefix}" -j "${jobs}" --target headercheck

stage "asan build" configure_and_build "${prefix}-asan" \
    -DACCELWALL_ASAN=ON
stage "asan ctest" run_ctest "${prefix}-asan"
stage "ubsan build" configure_and_build "${prefix}-ubsan" \
    -DACCELWALL_UBSAN=ON
stage "ubsan ctest" run_ctest "${prefix}-ubsan"
stage "tsan build" configure_and_build "${prefix}-tsan" \
    -DACCELWALL_TSAN=ON
stage "tsan ctest (parallel|robustness|serve|sweepdiff)" \
    run_ctest "${prefix}-tsan" "parallel|robustness|serve|sweepdiff"

# The loadgen smoke under ASan: daemon and generator both
# instrumented, 1k mixed requests, graceful drain. (The plain-build
# smoke already ran inside tier-1 ctest via the serve label.)
stage "asan loadgen smoke" bash tests/serve/run_loadgen_smoke.sh \
    "${prefix}-asan/tools/accelwall-serve" \
    "${prefix}-asan/tools/accelwall-loadgen"

# The perf runner under ASan: both sweep engines plus the serve mix on
# the pinned workload. Output goes to a scratch dir — the committed
# BENCH_*.json trajectories are only refreshed by
# bench/run_bench_trajectory.sh on an uninstrumented build.
stage "asan bench smoke" "${prefix}-asan/tools/accelwall-bench" \
    --repeat 2 --grid quick \
    --sweep-out "${prefix}-asan/BENCH_sweep.smoke.json" \
    --serve-out "${prefix}-asan/BENCH_serve.smoke.json" \
    --chiplet-out "${prefix}-asan/BENCH_chiplet.smoke.json"

if command -v clang++ >/dev/null 2>&1; then
    # Thread-safety analysis only exists under Clang; the top-level
    # CMakeLists adds -Werror=thread-safety automatically there, so a
    # plain configure+build IS the check — a failure means a lock
    # annotation was violated.
    stage "clang thread-safety build" \
        configure_and_build "${prefix}-clang" \
        -DCMAKE_CXX_COMPILER=clang++
else
    skip "clang thread-safety build" "clang++ not installed"
fi

if command -v clang-tidy >/dev/null 2>&1; then
    stage "clang-tidy (ACCELWALL_TIDY preset)" \
        configure_and_build "${prefix}-tidy" -DACCELWALL_TIDY=ON
else
    skip "clang-tidy" "clang-tidy not installed; config: .clang-tidy"
fi

echo
echo "== ci gate summary =="
for row in "${summary[@]}"; do
    echo "  ${row}"
done
write_summary_json
if [ "${gate_rc}" -ne 0 ]; then
    echo "GATE: FAIL"
else
    echo "GATE: PASS"
fi
exit "${gate_rc}"
