/**
 * @file
 * accelwall-dot: export a kernel's DFG as Graphviz DOT.
 *
 * Usage: accelwall-dot KERNEL [output.dot]
 * KERNEL is a Table IV abbreviation or an extension kernel (BTC,
 * BTC-AB, IDCT, ENT, DFT). Without an output path the DOT text goes to
 * stdout. Large graphs render as stage summaries.
 *
 * Usage errors exit 2; an unknown kernel is a model error (exit 1).
 */

#include <fstream>
#include <iostream>

#include "cli_util.hh"
#include "dfg/dot.hh"
#include "kernels/kernels.hh"
#include "util/logging.hh"

using namespace accelwall;

namespace
{

int
usage()
{
    std::cerr << "usage: accelwall-dot KERNEL [output.dot]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::handleVersion(argc, argv, "accelwall-dot");
    if (argc < 2 || argc > 3 || argv[1][0] == '-' ||
        (argc == 3 && argv[2][0] == '-')) {
        return usage();
    }

    dfg::Graph g = kernels::makeKernel(argv[1]);
    if (argc >= 3) {
        std::ofstream out(argv[2]);
        if (!out)
            fatal("cannot write '", argv[2], "'");
        dfg::writeDot(out, g);
        std::cout << "wrote " << argv[2] << " (" << g.numNodes()
                  << " nodes)\n";
    } else {
        dfg::writeDot(std::cout, g);
    }
    return 0;
}
