/**
 * @file
 * accelwall_chaosproxy: a deterministic byte-level fault-injecting TCP
 * proxy for black-box chaos testing of the serve stack.
 *
 * Usage:
 *   accelwall-chaosproxy --upstream-port P [--upstream-host H]
 *                        [--host H] [--port P] [--port-file PATH]
 *                        [--fault SPEC] [--idle-ms N] [--version]
 *
 * Sits between a client (the loadgen) and accelwall-serve and applies
 * scripted faults to the byte streams. SPEC is a comma-separated list
 * of `kind:period[:arg]` rules; a rule fires on every period-th
 * connection (keyed by the proxy's 0-based connection serial, so the
 * fault *set* is a pure function of the spec and the connection order
 * — no clocks, no randomness):
 *
 *   truncate:N[:B]  forward only the first B (default 64) response
 *                   bytes, then close both sides
 *   corrupt:N[:O]   flip one bit of response byte O (default 0: the
 *                   'H' of the status line, so HTTP framing validation
 *                   always detects the damage and the client retries)
 *   fin:N           premature FIN: forward the request, close the
 *                   client side without any response bytes
 *   delay:N[:B]     delay-by-bytes: flush the response in two writes
 *                   split at byte B (default 16) — exercises header/
 *                   body reassembly without wall-clock sleeps
 *   drip:N[:B]      slow-loris the *request*: forward it to the
 *                   server in B-byte (default 1) writes
 *
 * Runs until SIGINT/SIGTERM, then prints a per-kind applied-fault
 * summary (the chaos CI smoke asserts on it). Usage errors exit 2.
 */

#include <sys/socket.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cli_util.hh"
#include "util/error.hh"
#include "util/socket.hh"

using namespace accelwall;

namespace
{

int
usage()
{
    std::cerr << "usage: accelwall-chaosproxy --upstream-port P\n"
                 "           [--upstream-host H] [--host H] [--port P]\n"
                 "           [--port-file PATH] [--fault SPEC]\n"
                 "           [--idle-ms N] [--version]\n"
                 "  SPEC: kind:period[:arg][,kind:period[:arg]...]\n"
                 "  kinds: truncate corrupt fin delay drip\n";
    return 2;
}

/** One parsed `kind:period[:arg]` rule. */
struct FaultRule
{
    std::string kind;
    std::uint64_t period = 0;
    std::size_t arg = 0;
};

/** Defaults per kind when the :arg field is omitted. */
std::size_t
defaultArg(const std::string &kind)
{
    if (kind == "truncate")
        return 64;
    if (kind == "corrupt")
        return 0; // the 'H' of "HTTP/1.1": framing always catches it
    if (kind == "delay")
        return 16;
    if (kind == "drip")
        return 1;
    return 0;
}

bool
parseFaultSpec(const std::string &spec, std::vector<FaultRule> &rules)
{
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;

        FaultRule rule;
        std::size_t c1 = entry.find(':');
        if (c1 == std::string::npos || c1 == 0)
            return false;
        rule.kind = entry.substr(0, c1);
        if (rule.kind != "truncate" && rule.kind != "corrupt" &&
            rule.kind != "fin" && rule.kind != "delay" &&
            rule.kind != "drip")
            return false;
        // One rule per kind: a duplicate would silently shadow the
        // earlier period, so reject the spec outright.
        for (const FaultRule &seen : rules) {
            if (seen.kind == rule.kind)
                return false;
        }

        std::size_t c2 = entry.find(':', c1 + 1);
        std::string period_str =
            entry.substr(c1 + 1, c2 == std::string::npos
                                     ? std::string::npos
                                     : c2 - c1 - 1);
        int period = 0;
        if (!cli::parseInt(period_str, period) || period <= 0)
            return false;
        rule.period = static_cast<std::uint64_t>(period);

        if (c2 != std::string::npos) {
            int arg = 0;
            if (!cli::parseInt(entry.substr(c2 + 1), arg) || arg < 0)
                return false;
            rule.arg = static_cast<std::size_t>(arg);
        } else {
            rule.arg = defaultArg(rule.kind);
        }
        rules.push_back(rule);
    }
    return true;
}

/** The faults active on one specific connection. */
struct ConnFaults
{
    bool truncate = false;
    std::size_t truncate_at = 0;
    bool corrupt = false;
    std::size_t corrupt_at = 0;
    bool fin = false;
    bool delay = false;
    std::size_t delay_at = 0;
    bool drip = false;
    std::size_t drip_chunk = 1;
};

std::atomic<std::uint64_t> g_applied_truncate{0};
std::atomic<std::uint64_t> g_applied_corrupt{0};
std::atomic<std::uint64_t> g_applied_fin{0};
std::atomic<std::uint64_t> g_applied_delay{0};
std::atomic<std::uint64_t> g_applied_drip{0};

/** Keyed like shouldFail: rule fires when (serial + 1) % period == 0. */
ConnFaults
faultsFor(const std::vector<FaultRule> &rules, std::uint64_t serial)
{
    ConnFaults f;
    for (const FaultRule &rule : rules) {
        if ((serial + 1) % rule.period != 0)
            continue;
        if (rule.kind == "truncate") {
            f.truncate = true;
            f.truncate_at = rule.arg;
            g_applied_truncate.fetch_add(1, std::memory_order_relaxed);
        } else if (rule.kind == "corrupt") {
            f.corrupt = true;
            f.corrupt_at = rule.arg;
            g_applied_corrupt.fetch_add(1, std::memory_order_relaxed);
        } else if (rule.kind == "fin") {
            f.fin = true;
            g_applied_fin.fetch_add(1, std::memory_order_relaxed);
        } else if (rule.kind == "delay") {
            f.delay = true;
            f.delay_at = rule.arg;
            g_applied_delay.fetch_add(1, std::memory_order_relaxed);
        } else if (rule.kind == "drip") {
            f.drip = true;
            f.drip_chunk = rule.arg > 0 ? rule.arg : 1;
            g_applied_drip.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return f;
}

/**
 * Forward @p data to @p fd in @p chunk-byte writes (the whole buffer
 * when chunk is 0). Returns false once the peer stops taking bytes.
 */
bool
forward(int fd, const std::string &data, std::size_t chunk,
        int deadline_ms)
{
    if (chunk == 0 || chunk >= data.size())
        return util::sendAll(fd, data, deadline_ms).ok();
    for (std::size_t off = 0; off < data.size(); off += chunk) {
        std::string piece = data.substr(off, chunk);
        if (!util::sendAll(fd, piece, deadline_ms).ok())
            return false;
    }
    return true;
}

/**
 * Relay client -> server until the client stops sending (EOF or
 * idle), applying the drip fault. One-request-per-connection keeps
 * this simple: the request is over when the server answers, and the
 * response relay owns connection teardown.
 */
void
relayRequest(int client_fd, int server_fd, const ConnFaults &faults,
             int idle_ms)
{
    while (true) {
        std::string buf;
        auto got = util::recvSome(client_fd, buf, 4096, idle_ms);
        if (!got.ok() || got.value() == 0)
            break; // client done (or gone); tell the server
        std::size_t chunk = faults.drip ? faults.drip_chunk : 0;
        if (!forward(server_fd, buf, chunk, idle_ms))
            break;
    }
    ::shutdown(server_fd, SHUT_WR);
}

/**
 * Relay server -> client, applying fin/truncate/corrupt/delay. Owns
 * the decision to cut the connection short.
 */
void
relayResponse(int server_fd, int client_fd, const ConnFaults &faults,
              int idle_ms)
{
    if (faults.fin) {
        // Premature FIN: the client sees an empty response.
        ::shutdown(client_fd, SHUT_WR);
        return;
    }
    std::size_t forwarded = 0;
    while (true) {
        std::string buf;
        auto got = util::recvSome(server_fd, buf, 4096, idle_ms);
        if (!got.ok() || got.value() == 0)
            break;
        if (faults.corrupt && forwarded <= faults.corrupt_at &&
            faults.corrupt_at < forwarded + buf.size()) {
            std::size_t at = faults.corrupt_at - forwarded;
            buf[at] = static_cast<char>(buf[at] ^ 0x01);
        }
        if (faults.truncate) {
            if (forwarded >= faults.truncate_at)
                break;
            if (forwarded + buf.size() > faults.truncate_at)
                buf.resize(faults.truncate_at - forwarded);
        }
        std::size_t chunk = 0;
        if (faults.delay && forwarded < faults.delay_at &&
            faults.delay_at < forwarded + buf.size())
            chunk = faults.delay_at - forwarded; // split at the mark
        if (!forward(client_fd, buf, chunk, idle_ms))
            break;
        forwarded += buf.size();
    }
    ::shutdown(client_fd, SHUT_WR);
}

util::WakePipe *g_wake = nullptr;

extern "C" void
stopHandler(int)
{
    if (g_wake != nullptr)
        g_wake->poke();
}

} // namespace

int
main(int argc, char **argv)
{
    cli::handleVersion(argc, argv, "accelwall-chaosproxy");

    std::string host = "127.0.0.1";
    std::string upstream_host = "127.0.0.1";
    int port = 0;
    int upstream_port = -1;
    int idle_ms = 5000;
    std::string port_file;
    std::vector<FaultRule> rules;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto intFlag = [&](int &out) {
            return i + 1 < argc && cli::parseInt(argv[++i], out);
        };
        int value = 0;
        if (arg == "--host" && i + 1 < argc) {
            host = argv[++i];
        } else if (arg == "--upstream-host" && i + 1 < argc) {
            upstream_host = argv[++i];
        } else if (arg == "--port" && intFlag(value) && value >= 0 &&
                   value <= 65535) {
            port = value;
        } else if (arg == "--upstream-port" && intFlag(value) &&
                   value > 0 && value <= 65535) {
            upstream_port = value;
        } else if (arg == "--idle-ms" && intFlag(value) && value > 0) {
            idle_ms = value;
        } else if (arg == "--port-file" && i + 1 < argc) {
            port_file = argv[++i];
        } else if (arg == "--fault" && i + 1 < argc) {
            if (!parseFaultSpec(argv[++i], rules))
                return usage();
        } else {
            return usage();
        }
    }
    if (upstream_port < 0)
        return usage();

    auto listener = util::tcpListen(host, port);
    if (!listener.ok()) {
        std::cerr << "accelwall-chaosproxy: " << listener.error().str()
                  << "\n";
        return 1;
    }

    util::WakePipe wake;
    g_wake = &wake;
    struct sigaction sa{};
    sa.sa_handler = stopHandler;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    struct sigaction ign{};
    ign.sa_handler = SIG_IGN;
    sigemptyset(&ign.sa_mask);
    sigaction(SIGPIPE, &ign, nullptr);

    if (!port_file.empty()) {
        std::ofstream out(port_file);
        if (!out) {
            std::cerr << "accelwall-chaosproxy: cannot write '"
                      << port_file << "'\n";
            return 1;
        }
        out << listener.value().port << "\n";
    }

    std::cout << "accelwall-chaosproxy " << cli::kVersion << " on "
              << host << ":" << listener.value().port << " -> "
              << upstream_host << ":" << upstream_port << " ("
              << rules.size() << " fault rules)" << std::endl;

    std::uint64_t serial = 0;
    std::vector<std::thread> conns;
    while (true) {
        auto woke = util::pollReadable(listener.value().fd.get(),
                                       wake.readFd(), -1);
        if (!woke.ok())
            continue;
        if (woke.value() == wake.readFd())
            break;
        auto client = util::tcpAccept(listener.value().fd.get());
        if (!client.ok()) {
            if (client.error().code() == ErrorCode::ServeConnection)
                continue;
            break;
        }
        ConnFaults faults = faultsFor(rules, serial++);
        conns.emplace_back(
            [client_fd = std::move(client.value()), upstream_host,
             upstream_port, faults, idle_ms]() mutable {
                auto server =
                    util::tcpConnect(upstream_host, upstream_port,
                                     idle_ms);
                if (!server.ok())
                    return; // upstream gone; client sees a close
                std::thread req([&] {
                    relayRequest(client_fd.get(),
                                 server.value().get(), faults,
                                 idle_ms);
                });
                relayResponse(server.value().get(), client_fd.get(),
                              faults, idle_ms);
                req.join();
            });
    }
    for (std::thread &t : conns)
        t.join();

    std::cout << "chaosproxy drained: " << serial << " connections"
              << ", truncate=" << g_applied_truncate.load()
              << ", corrupt=" << g_applied_corrupt.load()
              << ", fin=" << g_applied_fin.load()
              << ", delay=" << g_applied_delay.load()
              << ", drip=" << g_applied_drip.load() << std::endl;
    return 0;
}
