/**
 * @file
 * accelwall_export: dump every figure's data series as CSV so an
 * external plotting stack can regenerate the paper's plots.
 *
 * Usage: accelwall_export [output_dir]   (default: export/)
 *
 * Usage errors exit 2; unwritable outputs are model errors (exit 1).
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "cli_util.hh"
#include "cmos/scaling.hh"
#include "csr/csr.hh"
#include "potential/model.hh"
#include "projection/domains.hh"
#include "studies/bitcoin.hh"
#include "studies/fpga.hh"
#include "studies/gpu.hh"
#include "studies/video.hh"
#include "util/csv.hh"
#include "util/format.hh"
#include "util/logging.hh"

using namespace accelwall;

namespace
{

void
writeFile(const std::filesystem::path &dir, const std::string &name,
          const CsvWriter &csv)
{
    std::filesystem::path path = dir / name;
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '", path.string(), "'");
    csv.write(out);
    std::cout << "wrote " << path.string() << '\n';
}

std::string
num(double v)
{
    return fmtFixed(v, 6);
}

} // namespace

int
main(int argc, char **argv)
{
    cli::handleVersion(argc, argv, "accelwall-export");
    if (argc > 2 || (argc == 2 && argv[1][0] == '-')) {
        std::cerr << "usage: accelwall_export [output_dir]\n";
        return 2;
    }
    std::filesystem::path dir = argc > 1 ? argv[1] : "export";
    std::filesystem::create_directories(dir);

    potential::PotentialModel model;

    // Figure 1 / 9: Bitcoin series.
    for (bool eff : {false, true}) {
        CsvWriter csv({"chip", "platform", "year", "node_nm", "value",
                       "rel_gain", "rel_phy", "csr"});
        auto chips = studies::miningChips();
        auto series = csr::csrSeries(
            studies::miningChipGains(chips, eff), model,
            eff ? csr::Metric::EnergyEfficiency
                : csr::Metric::AreaThroughput);
        for (std::size_t i = 0; i < chips.size(); ++i) {
            const auto &c = chips[i];
            double value =
                eff ? c.ghs / c.watts : c.ghs / c.area_mm2;
            csv.addRow({c.label, chipdb::platformName(c.platform),
                        num(c.year), num(c.node_nm), num(value),
                        num(series[i].rel_gain),
                        num(series[i].rel_phy), num(series[i].csr)});
        }
        writeFile(dir, eff ? "fig09_bitcoin_eff.csv"
                           : "fig01_fig09_bitcoin_perf.csv",
                  csv);
    }

    // Figure 3a: scaling table.
    {
        const auto &scaling = cmos::ScalingTable::instance();
        CsvWriter csv({"node_nm", "vdd", "gate_delay", "capacitance",
                       "leakage", "dynamic_energy", "frequency_gain"});
        for (units::Nanometers node : scaling.nodes()) {
            const auto &p = scaling.at(node);
            csv.addRow({num(node.raw()), num(p.vdd.raw()),
                        num(p.gate_delay), num(p.capacitance),
                        num(p.leakage),
                        num(scaling.dynamicEnergy(node)),
                        num(scaling.frequencyGain(node))});
        }
        writeFile(dir, "fig03a_scaling.csv", csv);
    }

    // Figure 4: video decoders.
    for (bool eff : {false, true}) {
        CsvWriter csv({"chip", "year", "node_nm", "value", "rel_gain",
                       "rel_phy", "csr"});
        auto chips = studies::videoDecoderChips();
        auto series = csr::csrSeries(
            studies::videoChipGains(eff), model,
            eff ? csr::Metric::EnergyEfficiency
                : csr::Metric::Throughput);
        for (std::size_t i = 0; i < chips.size(); ++i) {
            double value = eff ? chips[i].mpix_s /
                                     (chips[i].power_mw / 1e3)
                               : chips[i].mpix_s;
            csv.addRow({chips[i].label, num(chips[i].year),
                        num(chips[i].node_nm), num(value),
                        num(series[i].rel_gain),
                        num(series[i].rel_phy), num(series[i].csr)});
        }
        writeFile(dir,
                  eff ? "fig04c_video_eff.csv" : "fig04a_video_perf.csv",
                  csv);
    }

    // Figure 5: GPU benchmarks (all results, both metrics).
    {
        CsvWriter csv({"gpu", "arch", "app", "year", "fps",
                       "frames_per_joule", "high_end"});
        for (const auto &r : studies::gpuBenchmarks()) {
            csv.addRow({r.gpu, r.arch, r.app, num(r.year), num(r.fps),
                        num(r.frames_per_joule),
                        r.high_end ? "1" : "0"});
        }
        writeFile(dir, "fig05_gpu_benchmarks.csv", csv);
    }

    // Figure 8: FPGA CNN designs.
    {
        CsvWriter csv({"design", "model", "year", "node_nm", "gops",
                       "gops_per_w", "lut_pct", "dsp_pct", "bram_pct",
                       "freq_mhz"});
        for (const auto &d : studies::fpgaCnnDesigns()) {
            csv.addRow({d.label, d.model, num(d.year), num(d.node_nm),
                        num(d.gops), num(d.gops / d.tdp_w),
                        num(d.lut_pct), num(d.dsp_pct),
                        num(d.bram_pct), num(d.freq_mhz)});
        }
        writeFile(dir, "fig08_fpga_cnn.csv", csv);
    }

    // Figures 15/16: projection frontiers per domain.
    for (bool eff : {false, true}) {
        CsvWriter csv({"domain", "phy", "gain", "on_frontier"});
        for (auto domain : {projection::Domain::VideoDecoding,
                            projection::Domain::GpuGraphics,
                            projection::Domain::FpgaCnn,
                            projection::Domain::BitcoinMining}) {
            auto study = projection::projectDomain(domain, eff);
            for (const auto &p : study.points) {
                bool on = false;
                for (const auto &f : study.projection.frontier)
                    on |= (f.x == p.x && f.y == p.y);
                csv.addRow({study.params.name, num(p.x), num(p.y),
                            on ? "1" : "0"});
            }
        }
        writeFile(dir, eff ? "fig16_eff_projection.csv"
                           : "fig15_perf_projection.csv",
                  csv);
    }

    std::cout << "done.\n";
    return 0;
}
