/**
 * @file
 * accelwall-sweep: run the Table III design-space sweep on a kernel
 * from the command line.
 *
 * Usage:
 *   accelwall-sweep KERNEL [--target perf|eff] [--area-um2 BUDGET]
 *                   [--power-mw BUDGET] [--csv] [--grid paper|quick]
 *                   [--jobs N] [--on-error abort|skip]
 *                   [--checkpoint PATH] [--resume]
 *   accelwall-sweep --chiplets K1,K2,... [--link-pj-per-bit X]
 *                   [--csv] [--jobs N]
 *
 * Prints the optimum (optionally under an area/power budget), the
 * Figure 14 gain attribution, and with --csv the full sweep as CSV on
 * stdout (the `status` column is "ok" or the failure code of the
 * cell's chain).
 *
 * The second form runs the chiplet axis instead of a kernel sweep: a
 * pinned 7nm / 700mm2 / 1GHz / 300W monolith is re-partitioned into
 * each K across every node in the shipped wafer-cost table, and each
 * point's cost-normalized gain (throughput per dollar, relative to
 * the monolith) is reported. --link-pj-per-bit overrides the
 * inter-chiplet link energy; output is bit-identical for every
 * --jobs value.
 *
 * --jobs N (or the ACCELWALL_JOBS environment variable) sets the
 * sweep's thread count; the default is the hardware concurrency, and
 * the output is identical for every value.
 *
 * Fault tolerance: --on-error skip keeps sweeping past failed
 * (node, simplification) chains and prints a degradation summary on
 * stderr; --checkpoint PATH appends finished chains to PATH so a
 * killed run can continue with --resume, producing output
 * bit-identical to an uninterrupted run.
 *
 * Exit codes: 0 success, 1 model/data error, 2 usage error, 3 when the
 * `sweep-kill` fault-injection site fires.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "aladdin/attribution.hh"
#include "aladdin/simulator.hh"
#include "aladdin/sweep.hh"
#include "chiplet/sweep.hh"
#include "cli_util.hh"
#include "kernels/kernels.hh"
#include "util/csv.hh"
#include "util/error.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/table.hh"

using namespace accelwall;

namespace
{

int
usage()
{
    std::cerr << "usage: accelwall-sweep KERNEL [--target perf|eff]\n"
                 "           [--area-um2 N] [--power-mw N] [--csv]\n"
                 "           [--grid paper|quick] [--jobs N]\n"
                 "           [--on-error abort|skip]\n"
                 "           [--checkpoint PATH] [--resume]\n"
                 "       accelwall-sweep --chiplets K1,K2,...\n"
                 "           [--link-pj-per-bit X] [--csv] [--jobs N]\n";
    return 2;
}

/** Parse a non-empty comma-separated integer list ("1,2,4,8"). */
bool
parseIntList(const std::string &s, std::vector<int> &out)
{
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        std::string tok =
            comma == std::string::npos
                ? s.substr(pos)
                : s.substr(pos, comma - pos);
        int v = 0;
        if (!cli::parseInt(tok, v))
            return false;
        out.push_back(v);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return !out.empty();
}

/**
 * The chiplet-axis mode (invoked when argv[1] is --chiplets): pinned
 * monolith, every K in the flag's list against every node in the
 * shipped wafer-cost table.
 */
int
chipletMain(int argc, char **argv)
{
    std::vector<int> chiplets;
    double link_pj = 0.0;
    bool csv = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--chiplets" && i + 1 < argc) {
            if (!parseIntList(argv[++i], chiplets))
                return usage();
        } else if (arg == "--link-pj-per-bit" && i + 1 < argc) {
            if (!cli::parseDouble(argv[++i], link_pj) || link_pj <= 0.0)
                return usage();
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--jobs" && i + 1 < argc) {
            int jobs = 0;
            if (!cli::parseInt(argv[++i], jobs) || jobs < 1)
                return usage();
            util::setDefaultJobs(jobs);
        } else {
            return usage();
        }
    }
    for (int k : chiplets)
        if (k < 1)
            return usage();

    using namespace units::literals;
    const auto &table = chiplet::shippedCostTable();
    chiplet::SweepConfig cfg;
    cfg.base = potential::ChipSpec{7.0_nm, 700.0_mm2, 1.0_ghz, 300.0_w};
    cfg.chiplets = chiplets;
    for (const auto &node : table.nodes)
        cfg.nodes.push_back(node.node_nm);
    if (link_pj > 0.0)
        cfg.link.pj_per_bit = units::Picojoules{link_pj};

    potential::PotentialModel model;
    auto outcome = chiplet::runSweep(model, table, cfg);
    if (!outcome.ok())
        fatal(outcome.error().str());
    const auto &sweep = outcome.value();

    if (csv) {
        CsvWriter out({"chiplets", "node_nm", "die_area_mm2",
                       "throughput_tghz", "power_w", "link_power_w",
                       "latency_penalty", "cost_usd",
                       "throughput_per_usd", "gain_per_usd", "status"});
        for (const auto &p : sweep.points) {
            out.addRow({std::to_string(p.chiplets),
                        fmtFixed(p.node_nm.raw(), 0),
                        fmtFixed(p.result.die_area.raw(), 3),
                        fmtFixed(p.result.throughput.raw(), 3),
                        fmtFixed(p.result.power.raw(), 4),
                        fmtFixed(p.result.link_power.raw(), 4),
                        fmtFixed(p.result.latency_penalty, 6),
                        fmtFixed(p.result.cost.raw(), 2),
                        fmtFixed(p.result.throughput_per_usd.raw(), 3),
                        fmtFixed(p.gain_per_usd, 6),
                        p.ok ? "ok" : errorCodeName(p.error)});
        }
        out.write(std::cout);
        return 0;
    }

    const auto &base = sweep.baseline;
    std::cout << "chiplet sweep: " << sweep.points.size()
              << " grid points; monolithic baseline "
              << fmtFixed(base.node_nm.raw(), 0) << " nm, "
              << fmtFixed(base.die_area.raw(), 0) << " mm2, $"
              << fmtFixed(base.cost.raw(), 2) << ", "
              << fmtSi(base.throughput_per_usd.raw(), 2)
              << " thr/$\n";
    const chiplet::SweepPoint *best = nullptr;
    for (const auto &p : sweep.points)
        if (p.ok && (!best || p.gain_per_usd > best->gain_per_usd))
            best = &p;
    if (best == nullptr)
        fatal("chiplet sweep: no feasible grid point");
    std::cout << "best: K=" << best->chiplets << " at "
              << fmtFixed(best->node_nm.raw(), 0) << " nm\n";
    Table t({"Chiplets", "Node [nm]", "Die [mm2]", "Cost [$]",
             "Link [W]", "Gain/$"});
    t.addRow({std::to_string(best->chiplets),
              fmtFixed(best->node_nm.raw(), 0),
              fmtFixed(best->result.die_area.raw(), 1),
              fmtFixed(best->result.cost.raw(), 2),
              fmtFixed(best->result.link_power.raw(), 2),
              fmtGain(best->gain_per_usd, 2)});
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::handleVersion(argc, argv, "accelwall-sweep");
    if (argc < 2)
        return usage();
    std::string kernel = argv[1];
    if (kernel == "--chiplets")
        return chipletMain(argc, argv);
    if (!kernel.empty() && kernel[0] == '-')
        return usage();
    bool eff_target = false;
    bool csv = false;
    bool quick_grid = false;
    double area_budget = 0.0, power_budget = 0.0;
    aladdin::SweepOptions sweep_opts;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--target" && i + 1 < argc) {
            std::string t = argv[++i];
            if (t == "eff")
                eff_target = true;
            else if (t != "perf")
                return usage();
        } else if (arg == "--area-um2" && i + 1 < argc) {
            if (!cli::parseDouble(argv[++i], area_budget))
                return usage();
        } else if (arg == "--power-mw" && i + 1 < argc) {
            if (!cli::parseDouble(argv[++i], power_budget))
                return usage();
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--grid" && i + 1 < argc) {
            std::string g = argv[++i];
            if (g == "quick")
                quick_grid = true;
            else if (g != "paper")
                return usage();
        } else if (arg == "--jobs" && i + 1 < argc) {
            int jobs = 0;
            if (!cli::parseInt(argv[++i], jobs) || jobs < 1)
                return usage();
            util::setDefaultJobs(jobs);
        } else if (arg == "--on-error" && i + 1 < argc) {
            std::string policy = argv[++i];
            if (policy == "skip")
                sweep_opts.on_error = aladdin::OnError::Skip;
            else if (policy != "abort")
                return usage();
        } else if (arg == "--checkpoint" && i + 1 < argc) {
            sweep_opts.checkpoint_path = argv[++i];
        } else if (arg == "--resume") {
            sweep_opts.resume = true;
        } else {
            return usage();
        }
    }

    aladdin::Simulator sim(kernels::makeKernel(kernel));
    auto cfg = quick_grid ? aladdin::SweepConfig::quick()
                          : aladdin::SweepConfig::paper();
    auto outcome = aladdin::runSweepChecked(sim, cfg, sweep_opts);
    if (!outcome.ok())
        fatal(outcome.error().str());
    const auto &points = outcome.value().points;
    const auto &report = outcome.value().report;
    if (report.degraded()) {
        warn("sweep degraded: ", report.summary());
        for (const auto &f : report.failures) {
            warn("  chain ", f.chain, " (node ", fmtFixed(f.node_nm, 0),
                 " nm, simplification ", f.simplification, "): ",
                 f.message);
        }
    }

    if (csv) {
        CsvWriter out({"node_nm", "partition", "simplification",
                       "runtime_ns", "energy_pj", "power_mw",
                       "area_um2", "efficiency_opj",
                       "lane_utilization", "status"});
        for (const auto &p : points) {
            out.addRow({fmtFixed(p.dp.node_nm, 0),
                        std::to_string(p.dp.partition),
                        std::to_string(p.dp.simplification),
                        fmtFixed(p.res.runtime_ns, 3),
                        fmtFixed(p.res.energy_pj, 3),
                        fmtFixed(p.res.power_mw, 4),
                        fmtFixed(p.res.area_um2, 1),
                        fmtFixed(p.res.efficiency_opj, 0),
                        fmtFixed(p.res.lane_utilization, 4),
                        p.ok ? "ok" : errorCodeName(p.error_code)});
        }
        out.write(std::cout);
        return 0;
    }

    std::size_t best;
    if (area_budget > 0.0) {
        best = eff_target
                   ? aladdin::bestEfficiencyUnderArea(points,
                                                      area_budget)
                   : aladdin::bestPerformanceUnderArea(points,
                                                       area_budget);
    } else if (power_budget > 0.0) {
        best = aladdin::bestPerformanceUnderPower(points, power_budget);
    } else {
        best = eff_target ? aladdin::bestEfficiency(points)
                          : aladdin::bestPerformance(points);
    }
    const auto &bp = points[best];

    std::cout << "kernel " << kernel << ": "
              << sim.graph().numNodes() << " nodes, "
              << points.size() << " design points\n";
    if (report.degraded())
        std::cout << "degraded: " << report.summary() << "\n";
    std::cout << "optimum: " << bp.dp.str() << "\n";
    Table t({"Runtime [us]", "Energy [nJ]", "Power [mW]",
             "Area [um2]", "OP/J", "Lane util"});
    t.addRow({fmtFixed(bp.res.runtime_ns / 1e3, 3),
              fmtFixed(bp.res.energy_pj / 1e3, 3),
              fmtFixed(bp.res.power_mw, 2),
              fmtSi(bp.res.area_um2, 1),
              fmtSi(bp.res.efficiency_opj, 2),
              fmtPercent(bp.res.lane_utilization)});
    t.print(std::cout);

    auto attribution = aladdin::attribute(
        sim, cfg,
        eff_target ? aladdin::Target::EnergyEfficiency
                   : aladdin::Target::Performance);
    std::cout << "\nattribution: gain "
              << fmtGain(attribution.total_gain, 1) << " = CMOS "
              << fmtPercent(attribution.frac_cmos) << " + het "
              << fmtPercent(attribution.frac_heterogeneity)
              << " + simp "
              << fmtPercent(attribution.frac_simplification)
              << " + part "
              << fmtPercent(attribution.frac_partitioning)
              << "; CSR " << fmtGain(attribution.csr, 2) << "\n";
    return 0;
}
