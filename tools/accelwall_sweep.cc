/**
 * @file
 * accelwall-sweep: run the Table III design-space sweep on a kernel
 * from the command line.
 *
 * Usage:
 *   accelwall-sweep KERNEL [--target perf|eff] [--area-um2 BUDGET]
 *                   [--power-mw BUDGET] [--csv] [--grid paper|quick]
 *                   [--jobs N] [--on-error abort|skip]
 *                   [--checkpoint PATH] [--resume]
 *
 * Prints the optimum (optionally under an area/power budget), the
 * Figure 14 gain attribution, and with --csv the full sweep as CSV on
 * stdout (the `status` column is "ok" or the failure code of the
 * cell's chain).
 *
 * --jobs N (or the ACCELWALL_JOBS environment variable) sets the
 * sweep's thread count; the default is the hardware concurrency, and
 * the output is identical for every value.
 *
 * Fault tolerance: --on-error skip keeps sweeping past failed
 * (node, simplification) chains and prints a degradation summary on
 * stderr; --checkpoint PATH appends finished chains to PATH so a
 * killed run can continue with --resume, producing output
 * bit-identical to an uninterrupted run.
 *
 * Exit codes: 0 success, 1 model/data error, 2 usage error, 3 when the
 * `sweep-kill` fault-injection site fires.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "aladdin/attribution.hh"
#include "aladdin/simulator.hh"
#include "aladdin/sweep.hh"
#include "cli_util.hh"
#include "kernels/kernels.hh"
#include "util/csv.hh"
#include "util/error.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/table.hh"

using namespace accelwall;

namespace
{

int
usage()
{
    std::cerr << "usage: accelwall-sweep KERNEL [--target perf|eff]\n"
                 "           [--area-um2 N] [--power-mw N] [--csv]\n"
                 "           [--grid paper|quick] [--jobs N]\n"
                 "           [--on-error abort|skip]\n"
                 "           [--checkpoint PATH] [--resume]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::handleVersion(argc, argv, "accelwall-sweep");
    if (argc < 2)
        return usage();
    std::string kernel = argv[1];
    if (!kernel.empty() && kernel[0] == '-')
        return usage();
    bool eff_target = false;
    bool csv = false;
    bool quick_grid = false;
    double area_budget = 0.0, power_budget = 0.0;
    aladdin::SweepOptions sweep_opts;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--target" && i + 1 < argc) {
            std::string t = argv[++i];
            if (t == "eff")
                eff_target = true;
            else if (t != "perf")
                return usage();
        } else if (arg == "--area-um2" && i + 1 < argc) {
            if (!cli::parseDouble(argv[++i], area_budget))
                return usage();
        } else if (arg == "--power-mw" && i + 1 < argc) {
            if (!cli::parseDouble(argv[++i], power_budget))
                return usage();
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--grid" && i + 1 < argc) {
            std::string g = argv[++i];
            if (g == "quick")
                quick_grid = true;
            else if (g != "paper")
                return usage();
        } else if (arg == "--jobs" && i + 1 < argc) {
            int jobs = 0;
            if (!cli::parseInt(argv[++i], jobs) || jobs < 1)
                return usage();
            util::setDefaultJobs(jobs);
        } else if (arg == "--on-error" && i + 1 < argc) {
            std::string policy = argv[++i];
            if (policy == "skip")
                sweep_opts.on_error = aladdin::OnError::Skip;
            else if (policy != "abort")
                return usage();
        } else if (arg == "--checkpoint" && i + 1 < argc) {
            sweep_opts.checkpoint_path = argv[++i];
        } else if (arg == "--resume") {
            sweep_opts.resume = true;
        } else {
            return usage();
        }
    }

    aladdin::Simulator sim(kernels::makeKernel(kernel));
    auto cfg = quick_grid ? aladdin::SweepConfig::quick()
                          : aladdin::SweepConfig::paper();
    auto outcome = aladdin::runSweepChecked(sim, cfg, sweep_opts);
    if (!outcome.ok())
        fatal(outcome.error().str());
    const auto &points = outcome.value().points;
    const auto &report = outcome.value().report;
    if (report.degraded()) {
        warn("sweep degraded: ", report.summary());
        for (const auto &f : report.failures) {
            warn("  chain ", f.chain, " (node ", fmtFixed(f.node_nm, 0),
                 " nm, simplification ", f.simplification, "): ",
                 f.message);
        }
    }

    if (csv) {
        CsvWriter out({"node_nm", "partition", "simplification",
                       "runtime_ns", "energy_pj", "power_mw",
                       "area_um2", "efficiency_opj",
                       "lane_utilization", "status"});
        for (const auto &p : points) {
            out.addRow({fmtFixed(p.dp.node_nm, 0),
                        std::to_string(p.dp.partition),
                        std::to_string(p.dp.simplification),
                        fmtFixed(p.res.runtime_ns, 3),
                        fmtFixed(p.res.energy_pj, 3),
                        fmtFixed(p.res.power_mw, 4),
                        fmtFixed(p.res.area_um2, 1),
                        fmtFixed(p.res.efficiency_opj, 0),
                        fmtFixed(p.res.lane_utilization, 4),
                        p.ok ? "ok" : errorCodeName(p.error_code)});
        }
        out.write(std::cout);
        return 0;
    }

    std::size_t best;
    if (area_budget > 0.0) {
        best = eff_target
                   ? aladdin::bestEfficiencyUnderArea(points,
                                                      area_budget)
                   : aladdin::bestPerformanceUnderArea(points,
                                                       area_budget);
    } else if (power_budget > 0.0) {
        best = aladdin::bestPerformanceUnderPower(points, power_budget);
    } else {
        best = eff_target ? aladdin::bestEfficiency(points)
                          : aladdin::bestPerformance(points);
    }
    const auto &bp = points[best];

    std::cout << "kernel " << kernel << ": "
              << sim.graph().numNodes() << " nodes, "
              << points.size() << " design points\n";
    if (report.degraded())
        std::cout << "degraded: " << report.summary() << "\n";
    std::cout << "optimum: " << bp.dp.str() << "\n";
    Table t({"Runtime [us]", "Energy [nJ]", "Power [mW]",
             "Area [um2]", "OP/J", "Lane util"});
    t.addRow({fmtFixed(bp.res.runtime_ns / 1e3, 3),
              fmtFixed(bp.res.energy_pj / 1e3, 3),
              fmtFixed(bp.res.power_mw, 2),
              fmtSi(bp.res.area_um2, 1),
              fmtSi(bp.res.efficiency_opj, 2),
              fmtPercent(bp.res.lane_utilization)});
    t.print(std::cout);

    auto attribution = aladdin::attribute(
        sim, cfg,
        eff_target ? aladdin::Target::EnergyEfficiency
                   : aladdin::Target::Performance);
    std::cout << "\nattribution: gain "
              << fmtGain(attribution.total_gain, 1) << " = CMOS "
              << fmtPercent(attribution.frac_cmos) << " + het "
              << fmtPercent(attribution.frac_heterogeneity)
              << " + simp "
              << fmtPercent(attribution.frac_simplification)
              << " + part "
              << fmtPercent(attribution.frac_partitioning)
              << "; CSR " << fmtGain(attribution.csr, 2) << "\n";
    return 0;
}
