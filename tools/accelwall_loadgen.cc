/**
 * @file
 * accelwall_loadgen: closed-loop load generator for accelwall-serve.
 *
 * Usage:
 *   accelwall-loadgen --port P [--host H] [--requests N]
 *                     [--concurrency N] [--deadline-ms N]
 *                     [--tolerate none|shed|retryable] [--version]
 *
 * Drives a mixed gains/csr workload: each in-flight slot issues one
 * request, waits for the full response, then issues the next
 * (closed-loop, so offered load tracks service capacity). Request
 * bodies cycle through a small corpus of distinct queries, which
 * exercises both cache misses (first pass) and hits (every pass
 * after).
 *
 * `--tolerate` sets the acceptance criterion (exit 0 iff it holds):
 *
 *   none       every request got a 2xx — the friendly-network smoke.
 *   shed       2xx or a clean shed (503/408) both count; transport
 *              errors and other statuses still fail. For runs where
 *              admission control is expected to engage.
 *   retryable  requests go through the resilient serve::Client
 *              (retry/backoff/breaker); after retries, 2xx or a clean
 *              shed count. For chaos runs, where the question is
 *              "does the client converge", not "was the wire clean".
 *
 * The summary reports p50/p95/p99 latency, the X-Cache hit count,
 * and the retry/shed totals either way.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cli_util.hh"
#include "serve/client.hh"

using namespace accelwall;

namespace
{

int
usage()
{
    std::cerr << "usage: accelwall-loadgen --port P [--host H]\n"
                 "           [--requests N] [--concurrency N]\n"
                 "           [--deadline-ms N]\n"
                 "           [--tolerate none|shed|retryable]\n"
                 "           [--version]\n";
    return 2;
}

/** What the run is allowed to survive (see the file comment). */
enum class Tolerate
{
    None,
    Shed,
    Retryable,
};

/** One (target, body) pair the workers cycle through. */
struct Query
{
    std::string target;
    std::string body;
};

std::vector<Query>
buildCorpus()
{
    std::vector<Query> corpus;
    // Gains queries across a spread of nodes and areas: 12 distinct
    // bodies, so a default 1k-request run revisits each ~80 times and
    // the cache-hit path dominates, like a real query mix would.
    for (double node : {45.0, 32.0, 16.0, 7.0}) {
        for (double area : {25.0, 100.0, 600.0}) {
            Query q;
            q.target = "/v1/gains";
            q.body = "{\"spec\": {\"node_nm\": " + std::to_string(node) +
                     ", \"area_mm2\": " + std::to_string(area) +
                     ", \"freq_ghz\": 1.5, \"tdp_w\": 250}}";
            corpus.push_back(std::move(q));
        }
    }
    // CSR queries over a miner-like series, one per metric.
    for (const char *metric : {"throughput", "efficiency", "area"}) {
        Query q;
        q.target = "/v1/csr";
        q.body = std::string("{\"metric\": \"") + metric +
                 "\", \"chips\": ["
                 "{\"name\": \"gen1\", \"node_nm\": 130, \"area_mm2\": "
                 "100, \"freq_ghz\": 0.2, \"tdp_w\": 50, \"gain\": 1},"
                 "{\"name\": \"gen2\", \"node_nm\": 55, \"area_mm2\": "
                 "120, \"freq_ghz\": 0.5, \"tdp_w\": 80, \"gain\": 20},"
                 "{\"name\": \"gen3\", \"node_nm\": 28, \"area_mm2\": "
                 "150, \"freq_ghz\": 0.7, \"tdp_w\": 150, \"gain\": "
                 "400},"
                 "{\"name\": \"gen4\", \"node_nm\": 16, \"area_mm2\": "
                 "180, \"freq_ghz\": 0.8, \"tdp_w\": 220, \"gain\": "
                 "9000}]}";
        corpus.push_back(std::move(q));
    }
    return corpus;
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    auto rank = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

} // namespace

int
main(int argc, char **argv)
{
    cli::handleVersion(argc, argv, "accelwall-loadgen");

    std::string host = "127.0.0.1";
    int port = 0;
    int requests = 1000;
    int concurrency = 8;
    int deadline_ms = 10000;
    Tolerate tolerate = Tolerate::None;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto intFlag = [&](int &out) {
            return i + 1 < argc && cli::parseInt(argv[++i], out);
        };
        if (arg == "--host" && i + 1 < argc) {
            host = argv[++i];
        } else if (arg == "--port" && intFlag(port) && port > 0 &&
                   port <= 65535) {
        } else if (arg == "--requests" && intFlag(requests) &&
                   requests > 0) {
        } else if (arg == "--concurrency" && intFlag(concurrency) &&
                   concurrency > 0) {
        } else if (arg == "--deadline-ms" && intFlag(deadline_ms) &&
                   deadline_ms > 0) {
        } else if (arg == "--tolerate" && i + 1 < argc) {
            std::string mode = argv[++i];
            if (mode == "none")
                tolerate = Tolerate::None;
            else if (mode == "shed")
                tolerate = Tolerate::Shed;
            else if (mode == "retryable")
                tolerate = Tolerate::Retryable;
            else
                return usage();
        } else {
            return usage();
        }
    }
    if (port == 0)
        return usage();

    const std::vector<Query> corpus = buildCorpus();
    std::atomic<int> next{0};
    std::atomic<long> ok2xx{0};
    std::atomic<long> client4xx{0};
    std::atomic<long> server5xx{0};
    std::atomic<long> shed{0};
    std::atomic<long> transport{0};
    std::atomic<long> cache_hits{0};

    // The resilient client path: one shared Client so the breaker
    // models the workers' collective view of the server.
    serve::RetryPolicy retry;
    retry.attempt_deadline_ms = deadline_ms;
    retry.overall_deadline_ms = 3 * deadline_ms;
    serve::Client client(host, port, retry);

    std::mutex lat_mu;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(static_cast<std::size_t>(requests));

    auto worker = [&]() {
        std::vector<double> local;
        while (true) {
            int id = next.fetch_add(1, std::memory_order_relaxed);
            if (id >= requests)
                break;
            const Query &q =
                corpus[static_cast<std::size_t>(id) % corpus.size()];
            auto start = std::chrono::steady_clock::now();
            auto res =
                tolerate == Tolerate::Retryable
                    ? client.post(q.target, q.body, true)
                    : serve::httpRequest(host, port, "POST", q.target,
                                         q.body, deadline_ms);
            double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
            if (!res.ok()) {
                ++transport;
                std::cerr << "request " << id << " failed: "
                          << res.error().str() << "\n";
                continue;
            }
            local.push_back(ms);
            int status = res.value().status;
            if (status >= 200 && status < 300)
                ++ok2xx;
            else if (status == 503 || status == 408)
                ++shed; // the server degraded on purpose
            else if (status < 500)
                ++client4xx;
            else
                ++server5xx;
            auto hit = res.value().headers.find("x-cache");
            if (hit != res.value().headers.end() &&
                hit->second == "hit")
                ++cache_hits;
        }
        std::lock_guard<std::mutex> lock(lat_mu);
        latencies_ms.insert(latencies_ms.end(), local.begin(),
                            local.end());
    };

    auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(concurrency));
    for (int i = 0; i < concurrency; ++i)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
    double wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();

    long retries = static_cast<long>(client.retries());
    std::sort(latencies_ms.begin(), latencies_ms.end());
    std::cout << "requests: " << requests << "  2xx: " << ok2xx
              << "  4xx: " << client4xx << "  5xx: " << server5xx
              << "  shed: " << shed
              << "  transport-errors: " << transport << "\n";
    std::cout << "retries: " << retries
              << "  breaker-opens: " << client.breakerOpens()
              << "  breaker-fast-fails: " << client.breakerFastFails()
              << "\n";
    std::cout << "cache hits: " << cache_hits << "/" << requests << "\n";
    std::cout << "throughput: "
              << static_cast<double>(requests) / wall_s << " req/s over "
              << wall_s << " s (" << concurrency << " closed-loop slots)"
              << "\n";
    std::cout << "latency ms  p50: " << percentile(latencies_ms, 50.0)
              << "  p95: " << percentile(latencies_ms, 95.0)
              << "  p99: " << percentile(latencies_ms, 99.0) << "\n";

    bool clean = false;
    switch (tolerate) {
      case Tolerate::None:
        clean = transport == 0 && client4xx == 0 && server5xx == 0 &&
                shed == 0 && ok2xx == requests;
        if (!clean)
            std::cerr << "FAIL: not every request completed with 2xx\n";
        break;
      case Tolerate::Shed:
      case Tolerate::Retryable:
        clean = transport == 0 && client4xx == 0 && server5xx == 0 &&
                ok2xx + shed == requests;
        if (!clean) {
            std::cerr << "FAIL: requests failed beyond clean sheds "
                         "(tolerate="
                      << (tolerate == Tolerate::Shed ? "shed"
                                                     : "retryable")
                      << ")\n";
        }
        break;
    }
    return clean ? 0 : 1;
}
