/**
 * @file
 * accelwall-lint: static model-integrity checking for every registered
 * kernel DFG and every dfgopt rewrite.
 *
 * Usage: accelwall-lint [options] [KERNEL ...]
 *
 *   --format text|json   diagnostic output format (default text)
 *   --strict             treat warnings as errors for the exit code
 *   --verbose            also print note-severity diagnostics
 *   --list-rules         print the rule table and exit
 *   --demo-broken        lint intentionally broken graphs instead of
 *                        the registry (exits nonzero; used by ctest)
 *
 * Without kernel arguments the whole registry is linted: the 16 Table
 * IV kernels, the extension kernels (BTC, BTC-AB, IDCT, ENT, DFT), and
 * the Figure 11 example. Each kernel is verified as built, then pushed
 * through every dfgopt rewrite in before/after mode: the rewrite must
 * map a verified graph to a verified graph, preserve inputs and
 * effectful sinks, and its RewriteStats op-count accounting must match
 * the actual node delta. Exits 1 if any rule fires at error severity.
 */

#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dfg/graph.hh"
#include "dfg/verify.hh"
#include "dfgopt/rewrites.hh"
#include "kernels/kernels.hh"

using namespace accelwall;
using dfg::verify::Diagnostic;
using dfg::verify::Options;
using dfg::verify::Report;
using dfg::verify::RuleId;
using dfg::verify::Severity;

namespace
{

struct LintConfig
{
    bool json = false;
    bool strict = false;
    bool verbose = false;
};

/** One verified graph (a kernel, or one rewrite's output). */
struct GraphResult
{
    std::string name;
    std::string phase; // "kernel", "cse", "sr"
    std::size_t nodes = 0;
    std::size_t edges = 0;
    Report report;
};

/** The registry the linter walks by default. */
std::vector<std::string>
allKernelNames()
{
    std::vector<std::string> names;
    for (const kernels::KernelInfo &info : kernels::kernelTable())
        names.push_back(info.abbrev);
    for (const char *ext : { "BTC", "BTC-AB", "IDCT", "ENT", "DFT" })
        names.emplace_back(ext);
    return names;
}

/** Append an R004 diagnostic when RewriteStats don't add up. */
void
checkAccounting(const std::string &graph, const char *rewrite,
                const dfgopt::RewriteStats &stats,
                std::size_t expected_after, Report &report)
{
    if (stats.nodes_after == expected_after)
        return;
    Diagnostic d;
    d.rule = RuleId::RewriteAccounting;
    d.severity = Severity::Error;
    d.graph = graph;
    std::ostringstream oss;
    oss << rewrite << " reported " << stats.rewritten << " rewrites on "
        << stats.nodes_before << " nodes, which predicts "
        << expected_after << " nodes, but produced " << stats.nodes_after;
    d.message = oss.str();
    report.diagnostics.push_back(std::move(d));
    ++report.num_errors;
}

/** Verify one kernel and both rewrites of it. */
std::vector<GraphResult>
lintGraph(const dfg::Graph &g, const Options &options)
{
    std::vector<GraphResult> results;

    GraphResult base;
    base.name = g.name();
    base.phase = "kernel";
    base.nodes = g.numNodes();
    base.edges = g.numEdges();
    base.report = dfg::verify::verify(g, options);
    results.push_back(std::move(base));

    struct RewriteCase
    {
        const char *phase;
        std::function<dfg::Graph(const dfg::Graph &,
                                 dfgopt::RewriteStats *)> run;
        std::function<std::size_t(const dfgopt::RewriteStats &)> predict;
    };
    const RewriteCase cases[] = {
        { "cse", dfgopt::eliminateCommonSubexpressions,
          // CSE deletes each merged node.
          [](const dfgopt::RewriteStats &s) {
              return s.nodes_before - s.rewritten;
          } },
        { "sr", dfgopt::reduceStrength,
          // Strength reduction replaces one multiplier with three
          // cheap nodes: net +2 per rewrite.
          [](const dfgopt::RewriteStats &s) {
              return s.nodes_before + 2 * s.rewritten;
          } },
    };

    for (const RewriteCase &rc : cases) {
        dfgopt::RewriteStats stats;
        dfg::Graph after = rc.run(g, &stats);
        GraphResult res;
        res.name = after.name();
        res.phase = rc.phase;
        res.nodes = after.numNodes();
        res.edges = after.numEdges();
        res.report = dfg::verify::verifyRewrite(g, after, options);
        checkAccounting(after.name(), rc.phase, stats, rc.predict(stats),
                        res.report);
        results.push_back(std::move(res));
    }
    return results;
}

/**
 * Intentionally malformed graphs: proof the rules catch what they
 * claim to, and a seeded failure for the `lint_broken` ctest.
 */
std::vector<GraphResult>
brokenShowcase(const Options &options)
{
    std::vector<GraphResult> results;
    auto add = [&](const char *phase, const std::string &name,
                   Report report, std::size_t nodes, std::size_t edges) {
        GraphResult res;
        res.name = name;
        res.phase = phase;
        res.nodes = nodes;
        res.edges = edges;
        res.report = std::move(report);
        results.push_back(std::move(res));
    };

    {
        // A two-node cycle: the graph is not a DFG at all.
        dfg::Graph g("demo-cycle");
        dfg::NodeId a = g.addNode(dfg::OpType::Add);
        dfg::NodeId b = g.addNode(dfg::OpType::Sub);
        g.addEdge(a, b);
        g.addEdge(b, a);
        add("broken", g.name(), dfg::verify::verify(g, options),
            g.numNodes(), g.numEdges());
    }
    {
        // An 8-bit adder silently truncating 32-bit loads, and a
        // division with three operands.
        dfg::Graph g("demo-width-arity");
        dfg::NodeId l1 = g.addNode(dfg::OpType::Load);
        dfg::NodeId l2 = g.addNode(dfg::OpType::Load);
        dfg::NodeId l3 = g.addNode(dfg::OpType::Load);
        dfg::NodeId sum = g.addNode(dfg::OpType::Add, 8);
        dfg::NodeId div = g.addNode(dfg::OpType::Div);
        g.addEdge(l1, sum);
        g.addEdge(l2, sum);
        g.addEdge(l1, div);
        g.addEdge(l2, div);
        g.addEdge(l3, div);
        dfg::NodeId st = g.addNode(dfg::OpType::Store);
        g.addEdge(sum, st);
        dfg::NodeId st2 = g.addNode(dfg::OpType::Store);
        g.addEdge(div, st2);
        add("broken", g.name(), dfg::verify::verify(g, options),
            g.numNodes(), g.numEdges());
    }
    {
        // A dangling edge, expressible only in the raw edge-list form
        // (Graph::addEdge refuses it at construction time).
        dfg::verify::RawGraph raw;
        raw.name = "demo-dangling";
        raw.ops = { dfg::OpType::Load, dfg::OpType::Store };
        raw.edges = { { 0, 1 }, { 0, 7 } };
        add("broken", raw.name, dfg::verify::verify(raw, options),
            raw.ops.size(), raw.edges.size());
    }
    {
        // Dead compute: a multiply whose value no output ever sees.
        dfg::Graph g("demo-dead");
        dfg::NodeId l1 = g.addNode(dfg::OpType::Load);
        dfg::NodeId l2 = g.addNode(dfg::OpType::Load);
        dfg::NodeId mul = g.addNode(dfg::OpType::Mul);
        g.addEdge(l1, mul);
        g.addEdge(l2, mul);
        dfg::NodeId sum = g.addNode(dfg::OpType::Add);
        g.addEdge(l1, sum);
        g.addEdge(l2, sum);
        dfg::NodeId st = g.addNode(dfg::OpType::Store);
        g.addEdge(sum, st);
        add("broken", g.name(), dfg::verify::verify(g, options),
            g.numNodes(), g.numEdges());
    }
    return results;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += ch; break;
        }
    }
    return out;
}

void
printJson(const std::vector<GraphResult> &results, std::ostream &os)
{
    std::size_t errors = 0, warnings = 0, notes = 0;
    os << "{\n  \"graphs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const GraphResult &res = results[i];
        errors += res.report.num_errors;
        warnings += res.report.num_warnings;
        notes += res.report.num_notes;
        os << "    {\"name\": \"" << jsonEscape(res.name)
           << "\", \"phase\": \"" << res.phase
           << "\", \"nodes\": " << res.nodes
           << ", \"edges\": " << res.edges
           << ", \"errors\": " << res.report.num_errors
           << ", \"warnings\": " << res.report.num_warnings
           << ", \"notes\": " << res.report.num_notes
           << ", \"diagnostics\": [";
        for (std::size_t d = 0; d < res.report.diagnostics.size(); ++d) {
            const Diagnostic &diag = res.report.diagnostics[d];
            os << (d == 0 ? "\n" : ",\n") << "      {\"rule\": \""
               << dfg::verify::ruleCode(diag.rule) << "\", \"name\": \""
               << dfg::verify::ruleName(diag.rule)
               << "\", \"severity\": \""
               << dfg::verify::severityName(diag.severity) << "\"";
            if (diag.node)
                os << ", \"node\": " << *diag.node;
            if (diag.edge) {
                os << ", \"edge\": [" << diag.edge->first << ", "
                   << diag.edge->second << "]";
            }
            os << ", \"message\": \"" << jsonEscape(diag.message)
               << "\"}";
        }
        os << (res.report.diagnostics.empty() ? "]" : "\n    ]")
           << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"summary\": {\"graphs\": " << results.size()
       << ", \"errors\": " << errors << ", \"warnings\": " << warnings
       << ", \"notes\": " << notes << "}\n}\n";
}

void
printText(const std::vector<GraphResult> &results, const LintConfig &cfg,
          std::ostream &os)
{
    std::size_t errors = 0, warnings = 0, notes = 0;
    for (const GraphResult &res : results) {
        errors += res.report.num_errors;
        warnings += res.report.num_warnings;
        notes += res.report.num_notes;
        os << res.name << " [" << res.phase << "]: " << res.nodes
           << " nodes, " << res.edges << " edges: "
           << (res.report.ok() ? "OK" : "FAIL");
        if (res.report.num_errors + res.report.num_warnings +
                res.report.num_notes > 0) {
            os << " (" << res.report.summary() << ")";
        }
        os << "\n";
        for (const Diagnostic &d : res.report.diagnostics) {
            if (d.severity == Severity::Note && !cfg.verbose)
                continue;
            os << "  " << d.str() << "\n";
        }
    }
    os << results.size() << " graphs linted: " << errors << " errors, "
       << warnings << " warnings, " << notes << " notes\n";
}

void
listRules(std::ostream &os)
{
    os << "rule  name                severity  scope\n";
    for (int i = 0; i < dfg::verify::kNumRules; ++i) {
        auto rule = static_cast<RuleId>(i);
        std::string code = dfg::verify::ruleCode(rule);
        std::string name = dfg::verify::ruleName(rule);
        name.resize(19, ' ');
        os << code << "  " << name << " "
           << dfg::verify::severityName(dfg::verify::defaultSeverity(rule))
           << (code[0] == 'R' ? "   rewrite pair" : "   single graph")
           << "\n";
    }
}

int
usage()
{
    std::cerr << "usage: accelwall-lint [--format text|json] [--strict]\n"
              << "                      [--verbose] [--list-rules]\n"
              << "                      [--demo-broken] [KERNEL ...]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    LintConfig cfg;
    bool demo_broken = false;
    std::vector<std::string> kernels;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--format") {
            if (i + 1 >= argc)
                return usage();
            std::string fmt = argv[++i];
            if (fmt == "json") {
                cfg.json = true;
            } else if (fmt != "text") {
                return usage();
            }
        } else if (arg == "--strict") {
            cfg.strict = true;
        } else if (arg == "--verbose") {
            cfg.verbose = true;
        } else if (arg == "--list-rules") {
            listRules(std::cout);
            return 0;
        } else if (arg == "--demo-broken") {
            demo_broken = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            kernels.push_back(arg);
        }
    }

    Options options;
    options.warnings_as_errors = cfg.strict;

    std::vector<GraphResult> results;
    if (demo_broken) {
        results = brokenShowcase(options);
    } else {
        bool whole_registry = kernels.empty();
        if (whole_registry)
            kernels = allKernelNames();
        for (const std::string &name : kernels) {
            auto linted = lintGraph(kernels::makeKernel(name), options);
            results.insert(results.end(), linted.begin(), linted.end());
        }
        if (whole_registry) {
            auto fig = lintGraph(dfg::makeFigure11Example(), options);
            results.insert(results.end(), fig.begin(), fig.end());
        }
    }

    if (cfg.json)
        printJson(results, std::cout);
    else
        printText(results, cfg, std::cout);

    for (const GraphResult &res : results) {
        if (!res.report.ok())
            return 1;
    }
    return 0;
}
