/**
 * @file
 * accelwall-lint: static model-integrity checking across four rule
 * domains — the kernel DFGs/rewrites (V/R rules), the numerical model
 * inputs (M rules: scaling table, budget fits, chip corpus), the
 * repository's own sources (S rules: error codes, fault sites,
 * determinism, lock discipline), and the externally visible interface
 * surface (I rules: metrics, endpoints, flags, env knobs, CI labels).
 *
 * Usage: accelwall-lint [options] [KERNEL ...]
 *
 *   --domain dfg|model|source|iface|all
 *                           which rule domain to run (default all)
 *   --format text|json      diagnostic output format (default text)
 *   --strict                treat warnings as errors for the exit code
 *   --verbose               also print note-severity diagnostics
 *   --list-rules            print all rule tables and exit
 *   --list-domains          print the domain table and exit
 *   --source-root DIR       checkout the source/iface domains scan
 *                           (default: the configure-time source dir)
 *   --demo-broken           lint intentionally broken graphs instead of
 *                           the registry (exits nonzero; used by ctest)
 *   --demo-broken-model     audit intentionally corrupted model inputs
 *                           (exits nonzero; proves each M rule fires)
 *
 * Without kernel arguments the whole registry is linted: the 16 Table
 * IV kernels, the extension kernels (BTC, BTC-AB, IDCT, ENT, DFT), and
 * the Figure 11 example. Each kernel is verified as built, then pushed
 * through every dfgopt rewrite in before/after mode. The model domain
 * audits the shipped scaling table, budget model, and reference corpus
 * against rules M001..M010. The source and iface domains share one
 * tokenized scan of the checkout and run rules S001..S010 and
 * I001..I010 (the seeded-broken corpora under tests/lint/source/ and
 * tests/lint/iface/ prove each one fires). Exits 1 if any rule fires
 * at error severity; with more than one domain in the run, the final
 * summary line breaks the counts down per domain.
 */

#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.hh"
#include "dfg/graph.hh"
#include "dfg/verify.hh"
#include "dfgopt/rewrites.hh"
#include "ifacecheck/check.hh"
#include "kernels/kernels.hh"
#include "modelcheck/check.hh"
#include "srccheck/check.hh"
#include "util/format.hh"
#include "util/json.hh"

using namespace accelwall;
using dfg::verify::Options;
using dfg::verify::RuleId;
using dfg::verify::Severity;

namespace
{

struct LintConfig
{
    bool json = false;
    bool strict = false;
    bool verbose = false;
    bool run_dfg = true;
    bool run_model = true;
    bool run_source = true;
    bool run_iface = true;
    std::string source_root = cli::kSourceRoot;
};

/**
 * One diagnostic in domain-neutral form: both the dfg verifier's and
 * the model auditor's reports render into this so the emitters need no
 * knowledge of either domain.
 */
struct DiagView
{
    std::string rule;     // "V006" / "M002"
    std::string name;     // "arity-mismatch" / "vdd-monotonic"
    std::string severity; // "error" / "warning" / "note"
    std::string message;
    std::string rendered; // full one-line form for text output
    bool is_note = false;
    std::optional<dfg::NodeId> node;
    std::optional<std::pair<dfg::NodeId, dfg::NodeId>> edge;
    std::optional<std::size_t> row;
    /** Source-domain position (root-relative file, 1-based line). */
    std::optional<std::string> file;
    std::optional<std::size_t> line;
};

/** One linted unit: a graph, a rewrite output, or a model audit. */
struct LintResult
{
    std::string name;
    std::string phase; // "kernel", "cse", "sr", "broken", "model"
    /** Shape summary, e.g. "12 nodes, 14 edges" or "19 rows, ...". */
    std::string shape;
    /** Numeric shape fields for JSON ({"nodes": 12, "edges": 14}). */
    std::vector<std::pair<std::string, std::size_t>> stats;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;
    bool ok = true;
    std::string summary;
    std::vector<DiagView> diags;
};

LintResult
fromDfgReport(const std::string &name, const char *phase,
              std::size_t nodes, std::size_t edges,
              const dfg::verify::Report &report)
{
    LintResult res;
    res.name = name;
    res.phase = phase;
    std::ostringstream shape;
    shape << nodes << " nodes, " << edges << " edges";
    res.shape = shape.str();
    res.stats = { { "nodes", nodes }, { "edges", edges } };
    res.errors = report.num_errors;
    res.warnings = report.num_warnings;
    res.notes = report.num_notes;
    res.ok = report.ok();
    res.summary = report.summary();
    for (const dfg::verify::Diagnostic &d : report.diagnostics) {
        DiagView v;
        v.rule = dfg::verify::ruleCode(d.rule);
        v.name = dfg::verify::ruleName(d.rule);
        v.severity = dfg::verify::severityName(d.severity);
        v.message = d.message;
        v.rendered = d.str();
        v.is_note = d.severity == dfg::verify::Severity::Note;
        v.node = d.node;
        v.edge = d.edge;
        res.diags.push_back(std::move(v));
    }
    return res;
}

LintResult
fromModelReport(const modelcheck::Inputs &inputs,
                const modelcheck::Report &report)
{
    LintResult res;
    res.name = inputs.name;
    res.phase = "model";
    std::ostringstream shape;
    shape << inputs.scaling.size() << " scaling rows, "
          << inputs.budget.groups().size() << " TDP groups, "
          << inputs.corpus.size() << " chips";
    res.shape = shape.str();
    res.stats = { { "scaling_rows", inputs.scaling.size() },
                  { "tdp_groups", inputs.budget.groups().size() },
                  { "chips", inputs.corpus.size() } };
    res.errors = report.num_errors;
    res.warnings = report.num_warnings;
    res.notes = report.num_notes;
    res.ok = report.ok();
    res.summary = report.summary();
    for (const modelcheck::Diagnostic &d : report.diagnostics) {
        DiagView v;
        v.rule = modelcheck::ruleCode(d.rule);
        v.name = modelcheck::ruleName(d.rule);
        v.severity = modelcheck::severityName(d.severity);
        v.message = d.message;
        v.rendered = d.str();
        v.is_note = d.severity == modelcheck::Severity::Note;
        v.row = d.row;
        res.diags.push_back(std::move(v));
    }
    return res;
}

LintResult
fromSourceReport(const srccheck::Corpus &corpus,
                 const srccheck::Report &report)
{
    LintResult res;
    res.name = "source";
    res.phase = "source";
    std::ostringstream shape;
    shape << corpus.files.size() << " files, " << corpus.totalLines()
          << " lines";
    res.shape = shape.str();
    res.stats = { { "files", corpus.files.size() },
                  { "lines", corpus.totalLines() } };
    res.errors = report.num_errors;
    res.warnings = report.num_warnings;
    res.notes = report.num_notes;
    res.ok = report.ok();
    res.summary = report.summary();
    for (const srccheck::Diagnostic &d : report.diagnostics) {
        DiagView v;
        v.rule = srccheck::ruleCode(d.rule);
        v.name = srccheck::ruleName(d.rule);
        v.severity = srccheck::severityName(d.severity);
        v.message = d.message;
        v.rendered = d.str();
        v.is_note = d.severity == srccheck::Severity::Note;
        v.file = d.file;
        if (d.line > 0)
            v.line = d.line;
        res.diags.push_back(std::move(v));
    }
    return res;
}

LintResult
fromIfaceReport(const srccheck::Corpus &corpus,
                const ifacecheck::Report &report)
{
    LintResult res;
    res.name = "iface";
    res.phase = "iface";
    std::ostringstream shape;
    shape << corpus.files.size() << " files, " << corpus.totalLines()
          << " lines";
    res.shape = shape.str();
    res.stats = { { "files", corpus.files.size() },
                  { "lines", corpus.totalLines() } };
    res.errors = report.num_errors;
    res.warnings = report.num_warnings;
    res.notes = report.num_notes;
    res.ok = report.ok();
    res.summary = report.summary();
    for (const ifacecheck::Diagnostic &d : report.diagnostics) {
        DiagView v;
        v.rule = ifacecheck::ruleCode(d.rule);
        v.name = ifacecheck::ruleName(d.rule);
        v.severity = ifacecheck::severityName(d.severity);
        v.message = d.message;
        v.rendered = d.str();
        v.is_note = d.severity == ifacecheck::Severity::Note;
        v.file = d.file;
        if (d.line > 0)
            v.line = d.line;
        res.diags.push_back(std::move(v));
    }
    return res;
}

/** The domain a linted unit belongs to, from its phase tag. */
const char *
domainOf(const LintResult &res)
{
    if (res.phase == "model")
        return "model";
    if (res.phase == "source")
        return "source";
    if (res.phase == "iface")
        return "iface";
    return "dfg";
}

/** Per-domain error/warning counts, in fixed domain order. */
std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>>
domainCounts(const std::vector<LintResult> &results)
{
    std::vector<std::pair<std::string,
                          std::pair<std::size_t, std::size_t>>> counts;
    for (const char *domain : { "dfg", "model", "source", "iface" }) {
        bool present = false;
        std::size_t errors = 0, warnings = 0;
        for (const LintResult &res : results) {
            if (std::string(domainOf(res)) != domain)
                continue;
            present = true;
            errors += res.errors;
            warnings += res.warnings;
        }
        if (present)
            counts.push_back({ domain, { errors, warnings } });
    }
    return counts;
}

/** The registry the dfg domain walks by default. */
std::vector<std::string>
allKernelNames()
{
    std::vector<std::string> names;
    for (const kernels::KernelInfo &info : kernels::kernelTable())
        names.push_back(info.abbrev);
    for (const char *ext : { "BTC", "BTC-AB", "IDCT", "ENT", "DFT" })
        names.emplace_back(ext);
    return names;
}

/** Append an R004 diagnostic when RewriteStats don't add up. */
void
checkAccounting(const std::string &graph, const char *rewrite,
                const dfgopt::RewriteStats &stats,
                std::size_t expected_after,
                dfg::verify::Report &report)
{
    if (stats.nodes_after == expected_after)
        return;
    dfg::verify::Diagnostic d;
    d.rule = RuleId::RewriteAccounting;
    d.severity = Severity::Error;
    d.graph = graph;
    std::ostringstream oss;
    oss << rewrite << " reported " << stats.rewritten << " rewrites on "
        << stats.nodes_before << " nodes, which predicts "
        << expected_after << " nodes, but produced " << stats.nodes_after;
    d.message = oss.str();
    report.diagnostics.push_back(std::move(d));
    ++report.num_errors;
}

/** Verify one kernel and both rewrites of it. */
std::vector<LintResult>
lintGraph(const dfg::Graph &g, const Options &options)
{
    std::vector<LintResult> results;

    results.push_back(fromDfgReport(g.name(), "kernel", g.numNodes(),
                                    g.numEdges(),
                                    dfg::verify::verify(g, options)));

    struct RewriteCase
    {
        const char *phase;
        std::function<dfg::Graph(const dfg::Graph &,
                                 dfgopt::RewriteStats *)> run;
        std::function<std::size_t(const dfgopt::RewriteStats &)> predict;
    };
    const RewriteCase cases[] = {
        { "cse", dfgopt::eliminateCommonSubexpressions,
          // CSE deletes each merged node.
          [](const dfgopt::RewriteStats &s) {
              return s.nodes_before - s.rewritten;
          } },
        { "sr", dfgopt::reduceStrength,
          // Strength reduction replaces one multiplier with three
          // cheap nodes: net +2 per rewrite.
          [](const dfgopt::RewriteStats &s) {
              return s.nodes_before + 2 * s.rewritten;
          } },
    };

    for (const RewriteCase &rc : cases) {
        dfgopt::RewriteStats stats;
        dfg::Graph after = rc.run(g, &stats);
        dfg::verify::Report report =
            dfg::verify::verifyRewrite(g, after, options);
        checkAccounting(after.name(), rc.phase, stats,
                        rc.predict(stats), report);
        results.push_back(fromDfgReport(after.name(), rc.phase,
                                        after.numNodes(),
                                        after.numEdges(), report));
    }
    return results;
}

/**
 * Intentionally malformed graphs: proof the rules catch what they
 * claim to, and a seeded failure for the `lint_broken` ctest.
 */
std::vector<LintResult>
brokenShowcase(const Options &options)
{
    std::vector<LintResult> results;

    {
        // A two-node cycle: the graph is not a DFG at all.
        dfg::Graph g("demo-cycle");
        dfg::NodeId a = g.addNode(dfg::OpType::Add);
        dfg::NodeId b = g.addNode(dfg::OpType::Sub);
        g.addEdge(a, b);
        g.addEdge(b, a);
        results.push_back(fromDfgReport(g.name(), "broken", g.numNodes(),
                                        g.numEdges(),
                                        dfg::verify::verify(g, options)));
    }
    {
        // An 8-bit adder silently truncating 32-bit loads, and a
        // division with three operands.
        dfg::Graph g("demo-width-arity");
        dfg::NodeId l1 = g.addNode(dfg::OpType::Load);
        dfg::NodeId l2 = g.addNode(dfg::OpType::Load);
        dfg::NodeId l3 = g.addNode(dfg::OpType::Load);
        dfg::NodeId sum = g.addNode(dfg::OpType::Add, 8);
        dfg::NodeId div = g.addNode(dfg::OpType::Div);
        g.addEdge(l1, sum);
        g.addEdge(l2, sum);
        g.addEdge(l1, div);
        g.addEdge(l2, div);
        g.addEdge(l3, div);
        dfg::NodeId st = g.addNode(dfg::OpType::Store);
        g.addEdge(sum, st);
        dfg::NodeId st2 = g.addNode(dfg::OpType::Store);
        g.addEdge(div, st2);
        results.push_back(fromDfgReport(g.name(), "broken", g.numNodes(),
                                        g.numEdges(),
                                        dfg::verify::verify(g, options)));
    }
    {
        // A dangling edge, expressible only in the raw edge-list form
        // (Graph::addEdge refuses it at construction time).
        dfg::verify::RawGraph raw;
        raw.name = "demo-dangling";
        raw.ops = { dfg::OpType::Load, dfg::OpType::Store };
        raw.edges = { { 0, 1 }, { 0, 7 } };
        results.push_back(fromDfgReport(raw.name, "broken",
                                        raw.ops.size(), raw.edges.size(),
                                        dfg::verify::verify(raw,
                                                            options)));
    }
    {
        // Dead compute: a multiply whose value no output ever sees.
        dfg::Graph g("demo-dead");
        dfg::NodeId l1 = g.addNode(dfg::OpType::Load);
        dfg::NodeId l2 = g.addNode(dfg::OpType::Load);
        dfg::NodeId mul = g.addNode(dfg::OpType::Mul);
        g.addEdge(l1, mul);
        g.addEdge(l2, mul);
        dfg::NodeId sum = g.addNode(dfg::OpType::Add);
        g.addEdge(l1, sum);
        g.addEdge(l2, sum);
        dfg::NodeId st = g.addNode(dfg::OpType::Store);
        g.addEdge(sum, st);
        results.push_back(fromDfgReport(g.name(), "broken", g.numNodes(),
                                        g.numEdges(),
                                        dfg::verify::verify(g, options)));
    }
    return results;
}

void
printJson(const std::vector<LintResult> &results, std::ostream &os)
{
    std::size_t errors = 0, warnings = 0, notes = 0;
    JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.key("graphs").beginArray();
    for (const LintResult &res : results) {
        errors += res.errors;
        warnings += res.warnings;
        notes += res.notes;
        w.beginObject();
        w.key("name").value(res.name);
        w.key("phase").value(res.phase);
        for (const auto &[key, value] : res.stats)
            w.key(key).value(value);
        w.key("errors").value(res.errors);
        w.key("warnings").value(res.warnings);
        w.key("notes").value(res.notes);
        w.key("diagnostics").beginArray();
        for (const DiagView &diag : res.diags) {
            w.beginObject();
            w.key("rule").value(diag.rule);
            w.key("name").value(diag.name);
            w.key("severity").value(diag.severity);
            if (diag.node)
                w.key("node").value(*diag.node);
            if (diag.edge) {
                w.key("edge").beginArray();
                w.value(diag.edge->first).value(diag.edge->second);
                w.endArray();
            }
            if (diag.row)
                w.key("row").value(*diag.row);
            if (diag.file)
                w.key("file").value(*diag.file);
            if (diag.line)
                w.key("line").value(*diag.line);
            w.key("message").value(diag.message);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("summary").beginObject();
    w.key("graphs").value(results.size());
    w.key("errors").value(errors);
    w.key("warnings").value(warnings);
    w.key("notes").value(notes);
    w.key("domains").beginObject();
    for (const auto &[domain, counts] : domainCounts(results)) {
        w.key(domain).beginObject();
        w.key("errors").value(counts.first);
        w.key("warnings").value(counts.second);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    w.endObject();
    os << w.str() << "\n";
}

void
printText(const std::vector<LintResult> &results, const LintConfig &cfg,
          std::ostream &os)
{
    std::size_t errors = 0, warnings = 0, notes = 0;
    for (const LintResult &res : results) {
        errors += res.errors;
        warnings += res.warnings;
        notes += res.notes;
        os << res.name << " [" << res.phase << "]: " << res.shape
           << ": " << (res.ok ? "OK" : "FAIL");
        if (res.errors + res.warnings + res.notes > 0)
            os << " (" << res.summary << ")";
        os << "\n";
        for (const DiagView &d : res.diags) {
            if (d.is_note && !cfg.verbose)
                continue;
            os << "  " << d.rendered << "\n";
        }
    }
    os << results.size() << " units linted: " << errors << " errors, "
       << warnings << " warnings, " << notes << " notes";
    // With more than one domain in the run, break the exit-code
    // aggregate down so a failure names its domain on this line.
    auto per_domain = domainCounts(results);
    if (per_domain.size() > 1) {
        os << " [";
        bool first = true;
        for (const auto &[domain, counts] : per_domain) {
            if (!first)
                os << ", ";
            first = false;
            os << domain << ' '
               << (counts.first == 0 ? "OK" : "FAIL");
            if (counts.first > 0 || counts.second > 0) {
                os << " (" << counts.first << "e/" << counts.second
                   << "w)";
            }
        }
        os << "]";
    }
    os << "\n";
}

void
listRules(std::ostream &os)
{
    os << "rule  name                   severity  scope\n";
    for (int i = 0; i < dfg::verify::kNumRules; ++i) {
        auto rule = static_cast<RuleId>(i);
        std::string code = dfg::verify::ruleCode(rule);
        os << code << "  "
           << padRight(dfg::verify::ruleName(rule), 22) << " "
           << dfg::verify::severityName(
                  dfg::verify::defaultSeverity(rule))
           << (code[0] == 'R' ? "   rewrite pair" : "   single graph")
           << "\n";
    }
    for (int i = 0; i < modelcheck::kNumRules; ++i) {
        auto rule = static_cast<modelcheck::RuleId>(i);
        os << modelcheck::ruleCode(rule) << "  "
           << padRight(modelcheck::ruleName(rule), 22) << " "
           << modelcheck::severityName(modelcheck::defaultSeverity(rule))
           << "   model inputs\n";
    }
    for (int i = 0; i < srccheck::kNumRules; ++i) {
        auto rule = static_cast<srccheck::RuleId>(i);
        os << srccheck::ruleCode(rule) << "  "
           << padRight(srccheck::ruleName(rule), 22) << " "
           << srccheck::severityName(srccheck::defaultSeverity(rule))
           << "   repo sources\n";
    }
    for (int i = 0; i < ifacecheck::kNumRules; ++i) {
        auto rule = static_cast<ifacecheck::RuleId>(i);
        os << ifacecheck::ruleCode(rule) << "  "
           << padRight(ifacecheck::ruleName(rule), 22) << " "
           << ifacecheck::severityName(ifacecheck::defaultSeverity(rule))
           << "   interfaces\n";
    }
}

void
listDomains(std::ostream &os)
{
    os << "dfg     kernel DFGs and dfgopt rewrites (rules V001..R004)\n"
       << "model   numerical model inputs (rules M001..M010)\n"
       << "source  repository source consistency (rules S001..S010)\n"
       << "iface   external interface drift (rules I001..I010)\n"
       << "all     every domain above (the default)\n";
}

int
usage()
{
    std::cerr
        << "usage: accelwall-lint [--domain dfg|model|source|iface|all]\n"
        << "                      [--format text|json] [--strict]\n"
        << "                      [--verbose] [--list-rules]\n"
        << "                      [--list-domains]\n"
        << "                      [--source-root DIR]\n"
        << "                      [--demo-broken]\n"
        << "                      [--demo-broken-model]\n"
        << "                      [KERNEL ...]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::handleVersion(argc, argv, "accelwall-lint");
    LintConfig cfg;
    bool demo_broken = false;
    bool demo_broken_model = false;
    std::vector<std::string> kernels;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--format") {
            if (i + 1 >= argc)
                return usage();
            std::string fmt = argv[++i];
            if (fmt == "json") {
                cfg.json = true;
            } else if (fmt != "text") {
                return usage();
            }
        } else if (arg == "--domain") {
            if (i + 1 >= argc)
                return usage();
            std::string domain = argv[++i];
            if (domain == "dfg") {
                cfg.run_model = false;
                cfg.run_source = false;
                cfg.run_iface = false;
            } else if (domain == "model") {
                cfg.run_dfg = false;
                cfg.run_source = false;
                cfg.run_iface = false;
            } else if (domain == "source") {
                cfg.run_dfg = false;
                cfg.run_model = false;
                cfg.run_iface = false;
            } else if (domain == "iface") {
                cfg.run_dfg = false;
                cfg.run_model = false;
                cfg.run_source = false;
            } else if (domain != "all") {
                std::cerr << "unknown domain '" << domain
                          << "' (valid: dfg, model, source, iface, "
                             "all)\n";
                return usage();
            }
        } else if (arg == "--source-root") {
            if (i + 1 >= argc)
                return usage();
            cfg.source_root = argv[++i];
        } else if (arg == "--strict") {
            cfg.strict = true;
        } else if (arg == "--verbose") {
            cfg.verbose = true;
        } else if (arg == "--list-rules") {
            listRules(std::cout);
            return 0;
        } else if (arg == "--list-domains") {
            listDomains(std::cout);
            return 0;
        } else if (arg == "--demo-broken") {
            demo_broken = true;
        } else if (arg == "--demo-broken-model") {
            demo_broken_model = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            kernels.push_back(arg);
        }
    }
    if (!kernels.empty() && !cfg.run_dfg) {
        std::cerr << "kernel arguments only apply to the dfg domain\n";
        return usage();
    }

    Options options;
    options.warnings_as_errors = cfg.strict;
    modelcheck::Options model_options;
    model_options.warnings_as_errors = cfg.strict;

    std::vector<LintResult> results;
    if (cfg.run_dfg && !demo_broken_model) {
        if (demo_broken) {
            auto broken = brokenShowcase(options);
            results.insert(results.end(), broken.begin(), broken.end());
        } else {
            bool whole_registry = kernels.empty();
            if (whole_registry)
                kernels = allKernelNames();
            for (const std::string &name : kernels) {
                auto linted =
                    lintGraph(kernels::makeKernel(name), options);
                results.insert(results.end(), linted.begin(),
                               linted.end());
            }
            if (whole_registry) {
                auto fig =
                    lintGraph(dfg::makeFigure11Example(), options);
                results.insert(results.end(), fig.begin(), fig.end());
            }
        }
    }
    if (cfg.run_model && !demo_broken) {
        if (demo_broken_model) {
            for (const modelcheck::Inputs &inputs :
                 modelcheck::brokenShowcaseInputs()) {
                results.push_back(fromModelReport(
                    inputs, modelcheck::check(inputs, model_options)));
            }
        } else {
            modelcheck::Inputs inputs = modelcheck::shippedInputs();
            results.push_back(fromModelReport(
                inputs, modelcheck::check(inputs, model_options)));
        }
    }
    if ((cfg.run_source || cfg.run_iface) && !demo_broken &&
        !demo_broken_model) {
        // The source and iface domains share one scan of the checkout.
        auto corpus = srccheck::loadCorpus(cfg.source_root);
        if (!corpus.ok()) {
            std::cerr << corpus.error().str() << "\n";
            return 1;
        }
        if (cfg.run_source) {
            srccheck::Options source_options;
            source_options.warnings_as_errors = cfg.strict;
            results.push_back(fromSourceReport(
                corpus.value(),
                srccheck::check(corpus.value(), source_options)));
        }
        if (cfg.run_iface) {
            ifacecheck::Options iface_options;
            iface_options.warnings_as_errors = cfg.strict;
            results.push_back(fromIfaceReport(
                corpus.value(),
                ifacecheck::check(corpus.value(), iface_options)));
        }
    }

    if (cfg.json)
        printJson(results, std::cout);
    else
        printText(results, cfg, std::cout);

    for (const LintResult &res : results) {
        if (!res.ok)
            return 1;
    }
    return 0;
}
