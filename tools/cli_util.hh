/**
 * @file
 * Shared argv helpers for the accelwall_* tools.
 *
 * Exit-code discipline (see DESIGN.md "Failure domains"):
 *   2  usage errors — unknown flags, missing flag values, malformed
 *      numbers. Diagnosed by the tool itself before any model runs.
 *   1  model/data errors — fatal() inside the library (bad corpus,
 *      unknown kernel, infeasible budget, ...).
 *   3  simulated crash from the `sweep-kill` fault-injection site.
 */

#ifndef ACCELWALL_TOOLS_CLI_UTIL_HH
#define ACCELWALL_TOOLS_CLI_UTIL_HH

#include <cstdlib>
#include <string>

namespace accelwall::cli
{

/** Strict full-string parse; "12x", "", and "--csv" all fail. */
inline bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size();
}

/** Strict full-string base-10 integer parse. */
inline bool
parseInt(const std::string &s, int &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size())
        return false;
    out = static_cast<int>(v);
    return true;
}

} // namespace accelwall::cli

#endif // ACCELWALL_TOOLS_CLI_UTIL_HH
