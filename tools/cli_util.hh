/**
 * @file
 * Shared argv helpers for the accelwall_* tools.
 *
 * Exit-code discipline (see DESIGN.md "Failure domains"):
 *   2  usage errors — unknown flags, missing flag values, malformed
 *      numbers. Diagnosed by the tool itself before any model runs.
 *   1  model/data errors — fatal() inside the library (bad corpus,
 *      unknown kernel, infeasible budget, ...).
 *   3  simulated crash from the `sweep-kill` fault-injection site.
 */

#ifndef ACCELWALL_TOOLS_CLI_UTIL_HH
#define ACCELWALL_TOOLS_CLI_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "version.hh" // generated; see tools/version.hh.in

namespace accelwall::cli
{

/**
 * Handle `--version` uniformly across the tools: print
 * "<tool> <version>" and exit 0 if the flag appears anywhere in argv.
 * Call before any other argument parsing so `--version` wins even in
 * otherwise-invalid invocations.
 */
inline void
handleVersion(int argc, char **argv, const char *tool)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--version") {
            std::printf("%s %s\n", tool, kVersion);
            std::exit(0);
        }
}

/** Strict full-string parse; "12x", "", and "--csv" all fail. */
inline bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size();
}

/** Strict full-string base-10 integer parse. */
inline bool
parseInt(const std::string &s, int &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size())
        return false;
    out = static_cast<int>(v);
    return true;
}

} // namespace accelwall::cli

#endif // ACCELWALL_TOOLS_CLI_UTIL_HH
