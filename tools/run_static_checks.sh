#!/usr/bin/env bash
# Compatibility shim: the static-analysis battery moved to
# tools/ci_gate.sh, which runs the same stages (plus headercheck and
# the ACCELWALL_TIDY preset) but aggregates their exit codes into a
# one-screen pass/fail summary instead of dying at the first failure.
exec "$(dirname "$0")/ci_gate.sh" "$@"
