#!/usr/bin/env bash
# Run the full static-analysis battery:
#
#   1. A plain build with the tier-1 test suite (includes the `lint`
#      and `lint_broken` ctest entries driving accelwall-lint).
#   2. An AddressSanitizer build + full ctest.
#   3. An UndefinedBehaviorSanitizer build + full ctest.
#   4. A ThreadSanitizer build running the `parallel` and `robustness`
#      labels (the concurrent sweep, its error boundary/checkpoint
#      writes, and the fault-injection suite).
#   5. clang-tidy over src/ (skipped with a notice when clang-tidy is
#      not installed — the container ships gcc only).
#
# Usage: tools/run_static_checks.sh [build-dir-prefix]
#
# Build trees land in <prefix>, <prefix>-asan, <prefix>-ubsan,
# <prefix>-tsan (default prefix: build-checks). Exits nonzero on the
# first failure.

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-checks}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
    local dir="$1" labels="$2"
    shift 2
    echo "=== configure ${dir} ($*) ==="
    cmake -B "${dir}" -S . "$@" >/dev/null
    echo "=== build ${dir} ==="
    cmake --build "${dir}" -j "${jobs}"
    echo "=== ctest ${dir} ==="
    if [ -n "${labels}" ]; then
        ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" \
            -L "${labels}"
    else
        ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
    fi
}

run_suite "${prefix}" ""
run_suite "${prefix}-asan" "" -DACCELWALL_ASAN=ON
run_suite "${prefix}-ubsan" "" -DACCELWALL_UBSAN=ON
run_suite "${prefix}-tsan" "parallel|robustness" -DACCELWALL_TSAN=ON

echo "=== lint (strict) ==="
"${prefix}/tools/accelwall-lint" --strict

if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== clang-tidy ==="
    cmake -B "${prefix}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    find src -name '*.cc' -print0 |
        xargs -0 -P "${jobs}" -n 1 clang-tidy -p "${prefix}" --quiet
else
    echo "=== clang-tidy not installed; skipping (config: .clang-tidy) ==="
fi

echo "All static checks passed."
