#!/usr/bin/env bash
# Run the full static-analysis battery:
#
#   1. A plain build with the tier-1 test suite (includes the `lint`
#      and `lint_broken` ctest entries driving accelwall-lint).
#   2. An AddressSanitizer build + full ctest.
#   3. An UndefinedBehaviorSanitizer build + full ctest.
#   4. A ThreadSanitizer build running the `parallel`, `robustness`,
#      `serve`, and `sweepdiff` labels (the concurrent sweep, its
#      error boundary/checkpoint writes, the fault-injection suite,
#      the multi-threaded HTTP server + its loadgen smoke, and the
#      SoA-vs-legacy differential harness).
#   5. A Clang build with -Wthread-safety -Werror=thread-safety, the
#      only compiler that checks the util/thread_annotations.hh
#      capability attributes (skipped with a notice when clang++ is
#      not installed — the container ships gcc only, where the
#      annotations compile away).
#   6. clang-tidy over src/ (skipped with a notice when clang-tidy is
#      not installed).
#
# Usage: tools/run_static_checks.sh [build-dir-prefix]
#
# Build trees land in <prefix>, <prefix>-asan, <prefix>-ubsan,
# <prefix>-tsan (default prefix: build-checks). Exits nonzero on the
# first failure.

set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-checks}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
    local dir="$1" labels="$2"
    shift 2
    echo "=== configure ${dir} ($*) ==="
    cmake -B "${dir}" -S . "$@" >/dev/null
    echo "=== build ${dir} ==="
    cmake --build "${dir}" -j "${jobs}"
    echo "=== ctest ${dir} ==="
    if [ -n "${labels}" ]; then
        ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" \
            -L "${labels}"
    else
        ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
    fi
}

run_suite "${prefix}" ""
run_suite "${prefix}-asan" "" -DACCELWALL_ASAN=ON
run_suite "${prefix}-ubsan" "" -DACCELWALL_UBSAN=ON
run_suite "${prefix}-tsan" "parallel|robustness|serve|sweepdiff" \
    -DACCELWALL_TSAN=ON

# The loadgen smoke under ASan: daemon and generator both
# instrumented, 1k mixed requests, graceful drain. (The plain-build
# smoke already ran inside the first run_suite via the serve label.)
echo "=== asan loadgen smoke ==="
bash tests/serve/run_loadgen_smoke.sh \
    "${prefix}-asan/tools/accelwall-serve" \
    "${prefix}-asan/tools/accelwall-loadgen"

# The perf runner under ASan: both sweep engines plus the serve mix on
# the pinned workload, instrumented end to end. Output goes to a
# scratch dir — the committed BENCH_*.json trajectory files are only
# refreshed by bench/run_bench_trajectory.sh on an uninstrumented
# build.
echo "=== asan bench smoke ==="
"${prefix}-asan/tools/accelwall-bench" --repeat 2 --grid quick \
    --sweep-out "${prefix}-asan/BENCH_sweep.smoke.json" \
    --serve-out "${prefix}-asan/BENCH_serve.smoke.json"

echo "=== lint (strict) ==="
"${prefix}/tools/accelwall-lint" --strict

if command -v clang++ >/dev/null 2>&1; then
    # Thread-safety analysis only runs under Clang; the top-level
    # CMakeLists turns the -Wthread-safety flags on automatically when
    # the compiler is Clang, so a plain configure+build is the check.
    # A build failure here IS the finding (a lock annotation violated).
    echo "=== clang thread-safety build ==="
    cmake -B "${prefix}-clang" -S . \
        -DCMAKE_CXX_COMPILER=clang++ >/dev/null
    cmake --build "${prefix}-clang" -j "${jobs}"
else
    echo "=== clang++ not installed; skipping thread-safety analysis ==="
fi

if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== clang-tidy ==="
    cmake -B "${prefix}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    find src -name '*.cc' -print0 |
        xargs -0 -P "${jobs}" -n 1 clang-tidy -p "${prefix}" --quiet
else
    echo "=== clang-tidy not installed; skipping (config: .clang-tidy) ==="
fi

echo "All static checks passed."
