/**
 * @file
 * Pinned-workload performance runner: the machine-readable perf
 * trajectory of the repo.
 *
 * Two benchmarks, each emitted as one JSON document so successive
 * commits can be diffed / plotted:
 *
 *   BENCH_sweep.json  Full Table IV kernel set swept on a fixed grid
 *                     under BOTH engines (SoA and legacy), median-of-N
 *                     wall time, cells/sec, per-kernel latency
 *                     percentiles, and the SoA-vs-legacy speedup.
 *   BENCH_serve.json  The full serve stack (real loopback sockets)
 *                     driven with a pinned request mix
 *                     (sweep/gains/csr/healthz) under two scenarios:
 *                     `clean` (no faults) and `degraded` (a fixed
 *                     recv-short:10 plan — every 10th socket read
 *                     clamped to one byte), so the trajectory tracks
 *                     throughput under network faults too.
 *   BENCH_chiplet.json  The chiplet yield/cost axis: the pinned
 *                     monolith re-partitioned over a fixed
 *                     K × node grid on the ThreadPool, median-of-N
 *                     wall time and cells/sec.
 *
 * The workload is pinned: same kernels, same grids, same request
 * bodies on every invocation, so numbers are comparable across
 * commits (bench/run_bench_trajectory.sh is the one documented entry
 * point). Schema stability is enforced by tests/golden/run_bench.cmake.
 *
 * usage: accelwall-bench [--repeat N] [--grid quick|paper]
 *                        [--sweep-out PATH] [--serve-out PATH]
 *                        [--chiplet-out PATH]
 *                        [--only sweep|serve|chiplet]
 */

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "aladdin/design_point.hh"
#include "aladdin/simulator.hh"
#include "aladdin/sweep.hh"
#include "chiplet/sweep.hh"
#include "kernels/kernels.hh"
#include "serve/client.hh"
#include "serve/http.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "util/faultinject.hh"
#include "util/json.hh"
#include "util/logging.hh"

#include "cli_util.hh"

namespace
{

using namespace accelwall;
using aladdin::Simulator;
using aladdin::SweepConfig;
using aladdin::SweepEngine;
using aladdin::SweepOptions;

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/** Peak resident set size in KiB (ru_maxrss is KiB on Linux). */
long
maxRssKb()
{
    struct rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;
}

/** Nearest-rank percentile of an unsorted sample set. */
double
percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    double rank = q / 100.0 * static_cast<double>(samples.size());
    auto idx = static_cast<std::size_t>(rank);
    if (idx > 0 && static_cast<double>(idx) >= rank)
        --idx;
    if (idx >= samples.size())
        idx = samples.size() - 1;
    return samples[idx];
}

double
median(std::vector<double> samples)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    std::size_t n = samples.size();
    if (n % 2 == 1)
        return samples[n / 2];
    return (samples[n / 2 - 1] + samples[n / 2]) / 2.0;
}

/** Measured results of one engine over the pinned sweep workload. */
struct EngineStats
{
    /** Total wall per repeat (ms), in run order. */
    std::vector<double> repeats_wall_ms;
    /** One sample per (repeat, kernel) sweep (ms). */
    std::vector<double> sweep_wall_ms;
    std::size_t cells_per_repeat = 0;
};

EngineStats
runSweepWorkload(const std::vector<Simulator> &sims,
                 const SweepConfig &cfg, SweepEngine engine, int repeat)
{
    SweepOptions opts;
    opts.engine = engine;

    EngineStats stats;
    // Warm up allocators / page in the code path, untimed.
    // srccheck:allow(S007): the warm-up result is irrelevant by
    // construction; the timed repeats below check their own.
    (void)aladdin::runSweepChecked(sims.front(), cfg, opts);

    for (int r = 0; r < repeat; ++r) {
        double total_ms = 0.0;
        std::size_t cells = 0;
        for (const Simulator &sim : sims) {
            auto t0 = Clock::now();
            auto outcome = aladdin::runSweepChecked(sim, cfg, opts);
            auto t1 = Clock::now();
            if (!outcome.ok())
                fatal("bench sweep failed: ",
                      outcome.error().str());
            cells += outcome.value().points.size();
            double ms = elapsedMs(t0, t1);
            stats.sweep_wall_ms.push_back(ms);
            total_ms += ms;
        }
        stats.repeats_wall_ms.push_back(total_ms);
        stats.cells_per_repeat = cells;
    }
    return stats;
}

void
writeEngineStats(JsonWriter &w, const EngineStats &s)
{
    double med = median(s.repeats_wall_ms);
    w.beginObject();
    w.key("median_wall_ms").value(med);
    w.key("cells_per_sec")
        .value(med > 0.0
                   ? static_cast<double>(s.cells_per_repeat) /
                         (med / 1000.0)
                   : 0.0);
    w.key("p50_ms").value(percentile(s.sweep_wall_ms, 50.0));
    w.key("p95_ms").value(percentile(s.sweep_wall_ms, 95.0));
    w.key("p99_ms").value(percentile(s.sweep_wall_ms, 99.0));
    w.key("repeats_wall_ms").beginArray();
    for (double ms : s.repeats_wall_ms)
        w.value(ms);
    w.endArray();
    w.endObject();
}

int
benchSweep(const std::string &grid_name, int repeat,
           const std::string &out_path)
{
    const SweepConfig cfg = grid_name == "paper"
                                ? SweepConfig::paper()
                                : SweepConfig::quick();

    std::vector<Simulator> sims;
    for (const auto &info : kernels::kernelTable())
        sims.emplace_back(kernels::makeKernel(info.abbrev));

    EngineStats soa =
        runSweepWorkload(sims, cfg, SweepEngine::Soa, repeat);
    EngineStats legacy =
        runSweepWorkload(sims, cfg, SweepEngine::Legacy, repeat);

    double soa_med = median(soa.repeats_wall_ms);
    double legacy_med = median(legacy.repeats_wall_ms);
    double speedup = soa_med > 0.0 ? legacy_med / soa_med : 0.0;

    JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.key("schema").value("accelwall-bench-sweep-v1");
    w.key("version").value(cli::kVersion);
    w.key("grid").value(grid_name);
    w.key("repeat").value(repeat);
    w.key("kernels")
        .value(static_cast<unsigned long long>(sims.size()));
    w.key("cells_per_repeat")
        .value(static_cast<unsigned long long>(soa.cells_per_repeat));
    w.key("engines").beginObject();
    w.key("soa");
    writeEngineStats(w, soa);
    w.key("legacy");
    writeEngineStats(w, legacy);
    w.endObject();
    w.key("speedup_soa_vs_legacy").value(speedup);
    w.key("max_rss_kb").value(static_cast<long long>(maxRssKb()));
    w.endObject();

    std::ofstream out(out_path, std::ios::trunc);
    if (!out)
        fatal("cannot write '", out_path, "'");
    out << w.str() << '\n';
    std::printf("%s: %s grid, %d repeats: soa %.1f ms (%.0f cells/s), "
                "legacy %.1f ms, speedup %.2fx\n",
                out_path.c_str(), grid_name.c_str(), repeat, soa_med,
                soa.cells_per_repeat / (soa_med / 1000.0), legacy_med,
                speedup);
    return 0;
}

int
benchChiplet(int repeat, const std::string &out_path)
{
    // Pinned grid: every shipped cost-table node against a fixed K
    // ladder, re-swept kRounds times per repeat so one repeat is long
    // enough to time.
    using namespace units::literals;
    const auto &table = chiplet::shippedCostTable();
    chiplet::SweepConfig cfg;
    cfg.base =
        potential::ChipSpec{7.0_nm, 700.0_mm2, 1.0_ghz, 300.0_w};
    cfg.chiplets = {1, 2, 3, 4, 6, 8, 12, 16};
    for (const auto &node : table.nodes)
        cfg.nodes.push_back(node.node_nm);
    constexpr int kRounds = 25;

    potential::PotentialModel model;
    // Warm up the pool and page in the code path, untimed.
    // srccheck:allow(S007): the warm-up result is irrelevant by
    // construction; the timed repeats below check their own.
    (void)chiplet::runSweep(model, table, cfg);

    EngineStats stats;
    for (int r = 0; r < repeat; ++r) {
        double total_ms = 0.0;
        std::size_t cells = 0;
        for (int round = 0; round < kRounds; ++round) {
            auto t0 = Clock::now();
            auto outcome = chiplet::runSweep(model, table, cfg);
            auto t1 = Clock::now();
            if (!outcome.ok())
                fatal("bench chiplet sweep failed: ",
                      outcome.error().str());
            cells += outcome.value().points.size();
            double ms = elapsedMs(t0, t1);
            stats.sweep_wall_ms.push_back(ms);
            total_ms += ms;
        }
        stats.repeats_wall_ms.push_back(total_ms);
        stats.cells_per_repeat = cells;
    }
    double med = median(stats.repeats_wall_ms);

    JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.key("schema").value("accelwall-bench-chiplet-v1");
    w.key("version").value(cli::kVersion);
    w.key("repeat").value(repeat);
    w.key("cells_per_repeat")
        .value(static_cast<unsigned long long>(
            stats.cells_per_repeat));
    w.key("chiplet");
    writeEngineStats(w, stats);
    w.key("max_rss_kb").value(static_cast<long long>(maxRssKb()));
    w.endObject();

    std::ofstream out(out_path, std::ios::trunc);
    if (!out)
        fatal("cannot write '", out_path, "'");
    out << w.str() << '\n';
    std::printf("%s: %d repeats: chiplet %.1f ms (%.0f cells/s)\n",
                out_path.c_str(), repeat, med,
                static_cast<double>(stats.cells_per_repeat) /
                    (med / 1000.0));
    return 0;
}

/** One (method, target, body) entry of the pinned serve mix. */
struct ServeQuery
{
    const char *method;
    const char *target;
    const char *body;
};

/** Measured results of one serve scenario over real sockets. */
struct ServeScenarioStats
{
    std::vector<double> repeats_wall_ms;
    std::vector<double> request_ms;
    std::uint64_t faults_injected = 0;
};

/**
 * Run the pinned mix against an in-process server over loopback
 * sockets, the given ACCELWALL_FAULT-style plan armed for the timed
 * repeats ("" for the clean baseline). The plan is disarmed again
 * before returning.
 */
ServeScenarioStats
runServeScenario(const std::vector<ServeQuery> &mix, int repeat,
                 int rounds, const std::string &fault_spec)
{
    serve::ServerOptions options;
    options.service.version = cli::kVersion;
    serve::Server server(options);
    if (auto started = server.start(); !started.ok())
        fatal("bench serve: ", started.error().str());
    int port = server.port();

    auto one = [&](const ServeQuery &q) {
        auto res = serve::httpRequest("127.0.0.1", port, q.method,
                                      q.target, q.body);
        if (!res.ok())
            fatal("bench serve request ", q.target, " failed: ",
                  res.error().str());
        if (res.value().status != 200)
            fatal("bench serve request ", q.target,
                  " failed with status ", res.value().status, ": ",
                  res.value().body);
    };

    // Warm-up round (fills the result cache), untimed and fault-free.
    for (const ServeQuery &q : mix)
        one(q);

    auto &plan = accelwall::util::FaultPlan::global();
    if (auto armed = plan.configure(fault_spec); !armed.ok())
        fatal("bench serve fault spec: ", armed.error().str());

    ServeScenarioStats stats;
    for (int r = 0; r < repeat; ++r) {
        double total_ms = 0.0;
        for (int round = 0; round < rounds; ++round) {
            for (const ServeQuery &q : mix) {
                auto t0 = Clock::now();
                one(q);
                auto t1 = Clock::now();
                double ms = elapsedMs(t0, t1);
                stats.request_ms.push_back(ms);
                total_ms += ms;
            }
        }
        stats.repeats_wall_ms.push_back(total_ms);
    }
    stats.faults_injected = plan.totalInjected();
    plan.clear();
    server.stop();
    return stats;
}

void
writeServeScenario(JsonWriter &w, const ServeScenarioStats &s,
                   const std::string &fault_spec,
                   std::size_t requests_per_repeat)
{
    double med = median(s.repeats_wall_ms);
    w.beginObject();
    w.key("fault_spec").value(fault_spec);
    w.key("median_wall_ms").value(med);
    w.key("requests_per_sec")
        .value(med > 0.0 ? static_cast<double>(requests_per_repeat) /
                               (med / 1000.0)
                         : 0.0);
    w.key("p50_ms").value(percentile(s.request_ms, 50.0));
    w.key("p95_ms").value(percentile(s.request_ms, 95.0));
    w.key("p99_ms").value(percentile(s.request_ms, 99.0));
    w.key("faults_injected")
        .value(static_cast<unsigned long long>(s.faults_injected));
    w.key("repeats_wall_ms").beginArray();
    for (double ms : s.repeats_wall_ms)
        w.value(ms);
    w.endArray();
    w.endObject();
}

int
benchServe(int repeat, const std::string &out_path)
{
    // Pinned mix: one bounded sweep, one gains and one csr query, one
    // liveness probe. With the default cache the repeated bodies hit
    // after the first round — deliberately part of the serve path
    // under measurement.
    const std::vector<ServeQuery> mix = {
        { "POST", "/v1/sweep",
          "{\"kernel\": \"RED\", \"nodes\": [45, 32, 16], "
          "\"partitions\": [1, 2, 4, 8], "
          "\"simplifications\": [1, 2, 3]}" },
        { "POST", "/v1/gains",
          "{\"spec\": {\"node_nm\": 16, \"area_mm2\": 100, "
          "\"freq_ghz\": 1.5, \"tdp_w\": 250}}" },
        { "POST", "/v1/csr",
          "{\"metric\": \"throughput\", \"chips\": ["
          "{\"name\": \"g1\", \"node_nm\": 130, \"area_mm2\": 100, "
          "\"freq_ghz\": 0.2, \"tdp_w\": 50, \"gain\": 1},"
          "{\"name\": \"g2\", \"node_nm\": 28, \"area_mm2\": 150, "
          "\"freq_ghz\": 0.7, \"tdp_w\": 150, \"gain\": 400}]}" },
        { "GET", "/healthz", "" },
    };
    constexpr int kRoundsPerRepeat = 50;
    std::size_t requests_per_repeat = mix.size() * kRoundsPerRepeat;

    // The degraded plan is part of the pinned workload: every 10th
    // socket read (server and client alike) clamped to one byte.
    const std::string kDegradedSpec = "recv-short:10";

    ServeScenarioStats clean =
        runServeScenario(mix, repeat, kRoundsPerRepeat, "");
    ServeScenarioStats degraded =
        runServeScenario(mix, repeat, kRoundsPerRepeat, kDegradedSpec);

    double clean_med = median(clean.repeats_wall_ms);
    double degraded_med = median(degraded.repeats_wall_ms);
    double slowdown =
        clean_med > 0.0 ? degraded_med / clean_med : 0.0;

    JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.key("schema").value("accelwall-bench-serve-v2");
    w.key("version").value(cli::kVersion);
    w.key("repeat").value(repeat);
    w.key("requests_per_repeat")
        .value(static_cast<unsigned long long>(requests_per_repeat));
    w.key("scenarios").beginObject();
    w.key("clean");
    writeServeScenario(w, clean, "", requests_per_repeat);
    w.key("degraded");
    writeServeScenario(w, degraded, kDegradedSpec,
                       requests_per_repeat);
    w.endObject();
    w.key("slowdown_degraded_vs_clean").value(slowdown);
    w.key("max_rss_kb").value(static_cast<long long>(maxRssKb()));
    w.endObject();

    std::ofstream out(out_path, std::ios::trunc);
    if (!out)
        fatal("cannot write '", out_path, "'");
    out << w.str() << '\n';
    std::printf("%s: %d repeats x %zu requests: clean %.1f ms, "
                "degraded %.1f ms (%.2fx, %llu faults)\n",
                out_path.c_str(), repeat, requests_per_repeat,
                clean_med, degraded_med, slowdown,
                static_cast<unsigned long long>(
                    degraded.faults_injected));
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: accelwall-bench [--repeat N] [--grid quick|paper]\n"
        "           [--sweep-out PATH] [--serve-out PATH]\n"
        "           [--chiplet-out PATH] [--only sweep|serve|chiplet]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::handleVersion(argc, argv, "accelwall-bench");

    int repeat = 5;
    std::string grid = "quick";
    std::string sweep_out = "BENCH_sweep.json";
    std::string serve_out = "BENCH_serve.json";
    std::string chiplet_out = "BENCH_chiplet.json";
    std::string only;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--repeat") {
            if (!cli::parseInt(next(), repeat) || repeat < 1)
                return usage();
        } else if (arg == "--grid") {
            grid = next();
            if (grid != "quick" && grid != "paper")
                return usage();
        } else if (arg == "--sweep-out") {
            sweep_out = next();
        } else if (arg == "--serve-out") {
            serve_out = next();
        } else if (arg == "--chiplet-out") {
            chiplet_out = next();
        } else if (arg == "--only") {
            only = next();
            if (only != "sweep" && only != "serve" &&
                only != "chiplet")
                return usage();
        } else {
            return usage();
        }
    }

    int rc = 0;
    if (only.empty() || only == "sweep")
        rc |= benchSweep(grid, repeat, sweep_out);
    if (only.empty() || only == "serve")
        rc |= benchServe(repeat, serve_out);
    if (only.empty() || only == "chiplet")
        rc |= benchChiplet(repeat, chiplet_out);
    return rc;
}
