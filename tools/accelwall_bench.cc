/**
 * @file
 * Pinned-workload performance runner: the machine-readable perf
 * trajectory of the repo.
 *
 * Two benchmarks, each emitted as one JSON document so successive
 * commits can be diffed / plotted:
 *
 *   BENCH_sweep.json  Full Table IV kernel set swept on a fixed grid
 *                     under BOTH engines (SoA and legacy), median-of-N
 *                     wall time, cells/sec, per-kernel latency
 *                     percentiles, and the SoA-vs-legacy speedup.
 *   BENCH_serve.json  The socket-free Service driven with a pinned
 *                     request mix (sweep/gains/csr/healthz), median-of-N
 *                     wall time, requests/sec, per-request latency
 *                     percentiles.
 *
 * The workload is pinned: same kernels, same grids, same request
 * bodies on every invocation, so numbers are comparable across
 * commits (bench/run_bench_trajectory.sh is the one documented entry
 * point). Schema stability is enforced by tests/golden/run_bench.cmake.
 *
 * usage: accelwall-bench [--repeat N] [--grid quick|paper]
 *                        [--sweep-out PATH] [--serve-out PATH]
 *                        [--only sweep|serve]
 */

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "aladdin/design_point.hh"
#include "aladdin/simulator.hh"
#include "aladdin/sweep.hh"
#include "kernels/kernels.hh"
#include "serve/http.hh"
#include "serve/service.hh"
#include "util/json.hh"
#include "util/logging.hh"

#include "cli_util.hh"

namespace
{

using namespace accelwall;
using aladdin::Simulator;
using aladdin::SweepConfig;
using aladdin::SweepEngine;
using aladdin::SweepOptions;

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/** Peak resident set size in KiB (ru_maxrss is KiB on Linux). */
long
maxRssKb()
{
    struct rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;
}

/** Nearest-rank percentile of an unsorted sample set. */
double
percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    double rank = q / 100.0 * static_cast<double>(samples.size());
    auto idx = static_cast<std::size_t>(rank);
    if (idx > 0 && static_cast<double>(idx) >= rank)
        --idx;
    if (idx >= samples.size())
        idx = samples.size() - 1;
    return samples[idx];
}

double
median(std::vector<double> samples)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    std::size_t n = samples.size();
    if (n % 2 == 1)
        return samples[n / 2];
    return (samples[n / 2 - 1] + samples[n / 2]) / 2.0;
}

/** Measured results of one engine over the pinned sweep workload. */
struct EngineStats
{
    /** Total wall per repeat (ms), in run order. */
    std::vector<double> repeats_wall_ms;
    /** One sample per (repeat, kernel) sweep (ms). */
    std::vector<double> sweep_wall_ms;
    std::size_t cells_per_repeat = 0;
};

EngineStats
runSweepWorkload(const std::vector<Simulator> &sims,
                 const SweepConfig &cfg, SweepEngine engine, int repeat)
{
    SweepOptions opts;
    opts.engine = engine;

    EngineStats stats;
    // Warm up allocators / page in the code path, untimed.
    // srccheck:allow(S007): the warm-up result is irrelevant by
    // construction; the timed repeats below check their own.
    (void)aladdin::runSweepChecked(sims.front(), cfg, opts);

    for (int r = 0; r < repeat; ++r) {
        double total_ms = 0.0;
        std::size_t cells = 0;
        for (const Simulator &sim : sims) {
            auto t0 = Clock::now();
            auto outcome = aladdin::runSweepChecked(sim, cfg, opts);
            auto t1 = Clock::now();
            if (!outcome.ok())
                fatal("bench sweep failed: ",
                      outcome.error().str());
            cells += outcome.value().points.size();
            double ms = elapsedMs(t0, t1);
            stats.sweep_wall_ms.push_back(ms);
            total_ms += ms;
        }
        stats.repeats_wall_ms.push_back(total_ms);
        stats.cells_per_repeat = cells;
    }
    return stats;
}

void
writeEngineStats(JsonWriter &w, const EngineStats &s)
{
    double med = median(s.repeats_wall_ms);
    w.beginObject();
    w.key("median_wall_ms").value(med);
    w.key("cells_per_sec")
        .value(med > 0.0
                   ? static_cast<double>(s.cells_per_repeat) /
                         (med / 1000.0)
                   : 0.0);
    w.key("p50_ms").value(percentile(s.sweep_wall_ms, 50.0));
    w.key("p95_ms").value(percentile(s.sweep_wall_ms, 95.0));
    w.key("p99_ms").value(percentile(s.sweep_wall_ms, 99.0));
    w.key("repeats_wall_ms").beginArray();
    for (double ms : s.repeats_wall_ms)
        w.value(ms);
    w.endArray();
    w.endObject();
}

int
benchSweep(const std::string &grid_name, int repeat,
           const std::string &out_path)
{
    const SweepConfig cfg = grid_name == "paper"
                                ? SweepConfig::paper()
                                : SweepConfig::quick();

    std::vector<Simulator> sims;
    for (const auto &info : kernels::kernelTable())
        sims.emplace_back(kernels::makeKernel(info.abbrev));

    EngineStats soa =
        runSweepWorkload(sims, cfg, SweepEngine::Soa, repeat);
    EngineStats legacy =
        runSweepWorkload(sims, cfg, SweepEngine::Legacy, repeat);

    double soa_med = median(soa.repeats_wall_ms);
    double legacy_med = median(legacy.repeats_wall_ms);
    double speedup = soa_med > 0.0 ? legacy_med / soa_med : 0.0;

    JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.key("schema").value("accelwall-bench-sweep-v1");
    w.key("version").value(cli::kVersion);
    w.key("grid").value(grid_name);
    w.key("repeat").value(repeat);
    w.key("kernels")
        .value(static_cast<unsigned long long>(sims.size()));
    w.key("cells_per_repeat")
        .value(static_cast<unsigned long long>(soa.cells_per_repeat));
    w.key("engines").beginObject();
    w.key("soa");
    writeEngineStats(w, soa);
    w.key("legacy");
    writeEngineStats(w, legacy);
    w.endObject();
    w.key("speedup_soa_vs_legacy").value(speedup);
    w.key("max_rss_kb").value(static_cast<long long>(maxRssKb()));
    w.endObject();

    std::ofstream out(out_path, std::ios::trunc);
    if (!out)
        fatal("cannot write '", out_path, "'");
    out << w.str() << '\n';
    std::printf("%s: %s grid, %d repeats: soa %.1f ms (%.0f cells/s), "
                "legacy %.1f ms, speedup %.2fx\n",
                out_path.c_str(), grid_name.c_str(), repeat, soa_med,
                soa.cells_per_repeat / (soa_med / 1000.0), legacy_med,
                speedup);
    return 0;
}

int
benchServe(int repeat, const std::string &out_path)
{
    using serve::HttpRequest;
    using serve::HttpResponse;
    using serve::Service;
    using serve::ServiceOptions;

    ServiceOptions options;
    options.version = cli::kVersion;
    Service service(options);

    auto post = [](const char *target, const char *body) {
        HttpRequest req;
        req.method = "POST";
        req.target = target;
        req.version = "HTTP/1.1";
        req.body = body;
        return req;
    };
    auto get = [](const char *target) {
        HttpRequest req;
        req.method = "GET";
        req.target = target;
        req.version = "HTTP/1.1";
        return req;
    };

    // Pinned mix: one bounded sweep, one gains and one csr query, one
    // liveness probe. With the default cache the repeated bodies hit
    // after the first round — deliberately part of the serve path
    // under measurement.
    const std::vector<HttpRequest> mix = {
        post("/v1/sweep",
             "{\"kernel\": \"RED\", \"nodes\": [45, 32, 16], "
             "\"partitions\": [1, 2, 4, 8], "
             "\"simplifications\": [1, 2, 3]}"),
        post("/v1/gains",
             "{\"spec\": {\"node_nm\": 16, \"area_mm2\": 100, "
             "\"freq_ghz\": 1.5, \"tdp_w\": 250}}"),
        post("/v1/csr",
             "{\"metric\": \"throughput\", \"chips\": ["
             "{\"name\": \"g1\", \"node_nm\": 130, \"area_mm2\": 100, "
             "\"freq_ghz\": 0.2, \"tdp_w\": 50, \"gain\": 1},"
             "{\"name\": \"g2\", \"node_nm\": 28, \"area_mm2\": 150, "
             "\"freq_ghz\": 0.7, \"tdp_w\": 150, \"gain\": 400}]}"),
        get("/healthz"),
    };
    constexpr int kRoundsPerRepeat = 50;

    std::vector<double> repeats_wall_ms;
    std::vector<double> request_ms;
    std::size_t requests_per_repeat = mix.size() * kRoundsPerRepeat;

    // Warm-up round (fills the result cache), untimed.
    for (const HttpRequest &req : mix) {
        HttpResponse res = service.handle(req);
        if (res.status != 200)
            fatal("bench serve request ", req.target,
                  " failed with status ", res.status, ": ", res.body);
    }

    for (int r = 0; r < repeat; ++r) {
        double total_ms = 0.0;
        for (int round = 0; round < kRoundsPerRepeat; ++round) {
            for (const HttpRequest &req : mix) {
                auto t0 = Clock::now();
                HttpResponse res = service.handle(req);
                auto t1 = Clock::now();
                if (res.status != 200)
                    fatal("bench serve request ", req.target,
                          " failed with status ", res.status);
                double ms = elapsedMs(t0, t1);
                request_ms.push_back(ms);
                total_ms += ms;
            }
        }
        repeats_wall_ms.push_back(total_ms);
    }

    double med = median(repeats_wall_ms);
    JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.key("schema").value("accelwall-bench-serve-v1");
    w.key("version").value(cli::kVersion);
    w.key("repeat").value(repeat);
    w.key("requests_per_repeat")
        .value(static_cast<unsigned long long>(requests_per_repeat));
    w.key("median_wall_ms").value(med);
    w.key("requests_per_sec")
        .value(med > 0.0 ? static_cast<double>(requests_per_repeat) /
                               (med / 1000.0)
                         : 0.0);
    w.key("p50_ms").value(percentile(request_ms, 50.0));
    w.key("p95_ms").value(percentile(request_ms, 95.0));
    w.key("p99_ms").value(percentile(request_ms, 99.0));
    w.key("repeats_wall_ms").beginArray();
    for (double ms : repeats_wall_ms)
        w.value(ms);
    w.endArray();
    w.key("max_rss_kb").value(static_cast<long long>(maxRssKb()));
    w.endObject();

    std::ofstream out(out_path, std::ios::trunc);
    if (!out)
        fatal("cannot write '", out_path, "'");
    out << w.str() << '\n';
    std::printf("%s: %d repeats x %zu requests: median %.1f ms "
                "(%.0f req/s)\n",
                out_path.c_str(), repeat, requests_per_repeat, med,
                requests_per_repeat / (med / 1000.0));
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: accelwall-bench [--repeat N] [--grid quick|paper]\n"
        "           [--sweep-out PATH] [--serve-out PATH]\n"
        "           [--only sweep|serve]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::handleVersion(argc, argv, "accelwall-bench");

    int repeat = 5;
    std::string grid = "quick";
    std::string sweep_out = "BENCH_sweep.json";
    std::string serve_out = "BENCH_serve.json";
    std::string only;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--repeat") {
            if (!cli::parseInt(next(), repeat) || repeat < 1)
                return usage();
        } else if (arg == "--grid") {
            grid = next();
            if (grid != "quick" && grid != "paper")
                return usage();
        } else if (arg == "--sweep-out") {
            sweep_out = next();
        } else if (arg == "--serve-out") {
            serve_out = next();
        } else if (arg == "--only") {
            only = next();
            if (only != "sweep" && only != "serve")
                return usage();
        } else {
            return usage();
        }
    }

    int rc = 0;
    if (only.empty() || only == "sweep")
        rc |= benchSweep(grid, repeat, sweep_out);
    if (only.empty() || only == "serve")
        rc |= benchServe(repeat, serve_out);
    return rc;
}
