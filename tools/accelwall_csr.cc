/**
 * @file
 * accelwall_csr: compute a CSR trend for your own chip series.
 *
 * Usage:
 *   accelwall_csr <chips.csv> [--metric throughput|efficiency|area]
 *
 * The CSV needs a header row with the columns
 *   name,node_nm,area_mm2,freq_mhz,tdp_w,gain[,year]
 * where `gain` is the reported metric value in any consistent unit
 * (images/s, GH/s/mm2, frames/J, ...). Rows are normalized to the
 * first row; the output is the Figure 1/4-style table of relative
 * gain, CMOS-driven potential, and CSR.
 *
 * Malformed rows are quarantined (diagnosed on stderr and skipped);
 * the analysis proceeds as long as two chips survive. File-level
 * problems — unreadable file, broken CSV framing, missing columns —
 * stay fatal (exit 1). Usage errors exit 2.
 */

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "cli_util.hh"
#include "csr/csr.hh"
#include "potential/model.hh"
#include "util/csv.hh"
#include "util/error.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace accelwall;

namespace
{

int
usage()
{
    std::cerr << "usage: accelwall_csr <chips.csv> "
                 "[--metric throughput|efficiency|area]\n";
    return 2;
}

bool
parseMetric(const std::string &name, csr::Metric &out)
{
    if (name == "throughput")
        out = csr::Metric::Throughput;
    else if (name == "efficiency")
        out = csr::Metric::EnergyEfficiency;
    else if (name == "area")
        out = csr::Metric::AreaThroughput;
    else
        return false;
    return true;
}

/** Parse one field or return a row-quarantining Error. */
Result<double>
toDouble(const std::string &field, const std::string &what)
{
    double value = 0.0;
    if (!cli::parseDouble(field, value)) {
        return makeError(ErrorCode::CsvBadNumber, "could not parse ",
                         what, " from '", field, "'");
    }
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::handleVersion(argc, argv, "accelwall-csr");
    if (argc < 2)
        return usage();
    std::string path = argv[1];
    if (!path.empty() && path[0] == '-')
        return usage();
    csr::Metric metric = csr::Metric::Throughput;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--metric" && i + 1 < argc) {
            if (!parseMetric(argv[++i], metric))
                return usage();
        } else {
            return usage();
        }
    }

    std::ifstream in(path);
    if (!in)
        fatal("cannot open '", path, "'");
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = parseCsv(buffer.str());
    if (!parsed.ok()) {
        Error err = parsed.error();
        fatal(err.in(path).str());
    }
    const auto &rows = parsed.value();
    if (rows.size() < 3)
        fatal("need a header plus at least two chip rows");

    // Column lookup from the header row.
    std::map<std::string, std::size_t> cols;
    for (std::size_t c = 0; c < rows[0].size(); ++c)
        cols[rows[0][c]] = c;
    for (const char *required :
         {"name", "node_nm", "area_mm2", "freq_mhz", "tdp_w", "gain"}) {
        if (!cols.count(required))
            fatal("missing required column '", required, "'");
    }

    // Quarantine-and-continue: one bad row costs that row, not the run.
    std::vector<csr::ChipGain> chips;
    std::size_t quarantined = 0;
    for (std::size_t r = 1; r < rows.size(); ++r) {
        const auto &row = rows[r];
        auto quarantine = [&](const Error &err) {
            warn("row ", r + 1, " quarantined: ", err.str());
            ++quarantined;
        };
        if (row.size() < rows[0].size()) {
            quarantine(makeError(ErrorCode::CsvArityMismatch, "has ",
                                 row.size(), " fields, expected ",
                                 rows[0].size()));
            continue;
        }
        csr::ChipGain chip;
        chip.name = row[cols["name"]];
        bool ok = true;
        auto field = [&](const char *col, double scale = 1.0) {
            auto v = toDouble(row[cols[col]], col);
            if (!v.ok()) {
                if (ok)
                    quarantine(v.error());
                ok = false;
                return 0.0;
            }
            return v.value() * scale;
        };
        // CSV ingest boundary: parse raw doubles, then enter the
        // dimensional domain.
        chip.spec.node_nm = units::Nanometers{field("node_nm")};
        chip.spec.area_mm2 = units::SquareMillimeters{field("area_mm2")};
        chip.spec.freq_ghz = units::Gigahertz{field("freq_mhz", 1e-3)};
        chip.spec.tdp_w = units::Watts{field("tdp_w")};
        chip.gain = field("gain");
        if (cols.count("year"))
            chip.year = field("year");
        if (!ok)
            continue;
        if (chip.spec.node_nm <= units::Nanometers{0.0} ||
            chip.spec.area_mm2 <= units::SquareMillimeters{0.0} ||
            chip.spec.tdp_w <= units::Watts{0.0} ||
            chip.spec.freq_ghz <= units::Gigahertz{0.0}) {
            quarantine(makeError(ErrorCode::RecordNonPositiveNode,
                                 "node/area/freq/tdp must be positive"));
            continue;
        }
        chips.push_back(std::move(chip));
    }
    if (quarantined > 0) {
        warn(chips.size(), "/", rows.size() - 1, " chip rows ok, ",
             quarantined, " quarantined");
    }
    if (chips.size() < 2)
        fatal("need at least two valid chip rows (", chips.size(),
              " survived, ", quarantined, " quarantined)");

    potential::PotentialModel model;
    auto series = csr::csrSeries(chips, model, metric);

    std::cout << "CSR analysis (" << csr::metricName(metric)
              << "), normalized to " << chips.front().name << ":\n";
    Table t({"Chip", "Gain", "CMOS-driven", "CSR"});
    for (const auto &pt : series) {
        t.addRow({pt.name, fmtGain(pt.rel_gain, 2),
                  fmtGain(pt.rel_phy, 2), fmtGain(pt.csr, 2)});
    }
    t.print(std::cout);
    return 0;
}
