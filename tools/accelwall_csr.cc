/**
 * @file
 * accelwall_csr: compute a CSR trend for your own chip series.
 *
 * Usage:
 *   accelwall_csr <chips.csv> [--metric throughput|efficiency|area]
 *
 * The CSV needs a header row with the columns
 *   name,node_nm,area_mm2,freq_mhz,tdp_w,gain[,year]
 * where `gain` is the reported metric value in any consistent unit
 * (images/s, GH/s/mm2, frames/J, ...). Rows are normalized to the
 * first row; the output is the Figure 1/4-style table of relative
 * gain, CMOS-driven potential, and CSR.
 */

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "csr/csr.hh"
#include "potential/model.hh"
#include "util/csv.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace accelwall;

namespace
{

csr::Metric
parseMetric(const std::string &name)
{
    if (name == "throughput")
        return csr::Metric::Throughput;
    if (name == "efficiency")
        return csr::Metric::EnergyEfficiency;
    if (name == "area")
        return csr::Metric::AreaThroughput;
    fatal("unknown metric '", name,
          "' (expected throughput|efficiency|area)");
}

double
toDouble(const std::string &field, const std::string &what)
{
    std::istringstream iss(field);
    double value = 0.0;
    if (!(iss >> value))
        fatal("could not parse ", what, " from '", field, "'");
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: accelwall_csr <chips.csv> "
                     "[--metric throughput|efficiency|area]\n";
        return 1;
    }
    std::string path = argv[1];
    csr::Metric metric = csr::Metric::Throughput;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--metric" && i + 1 < argc)
            metric = parseMetric(argv[++i]);
        else
            fatal("unknown argument '", arg, "'");
    }

    std::ifstream in(path);
    if (!in)
        fatal("cannot open '", path, "'");
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto rows = parseCsv(buffer.str());
    if (rows.size() < 3)
        fatal("need a header plus at least two chip rows");

    // Column lookup from the header row.
    std::map<std::string, std::size_t> cols;
    for (std::size_t c = 0; c < rows[0].size(); ++c)
        cols[rows[0][c]] = c;
    for (const char *required :
         {"name", "node_nm", "area_mm2", "freq_mhz", "tdp_w", "gain"}) {
        if (!cols.count(required))
            fatal("missing required column '", required, "'");
    }

    std::vector<csr::ChipGain> chips;
    for (std::size_t r = 1; r < rows.size(); ++r) {
        const auto &row = rows[r];
        if (row.size() < rows[0].size())
            fatal("row ", r, " has ", row.size(), " fields, expected ",
                  rows[0].size());
        csr::ChipGain chip;
        chip.name = row[cols["name"]];
        chip.spec.node_nm = toDouble(row[cols["node_nm"]], "node_nm");
        chip.spec.area_mm2 = toDouble(row[cols["area_mm2"]],
                                      "area_mm2");
        chip.spec.freq_ghz =
            toDouble(row[cols["freq_mhz"]], "freq_mhz") / 1e3;
        chip.spec.tdp_w = toDouble(row[cols["tdp_w"]], "tdp_w");
        chip.gain = toDouble(row[cols["gain"]], "gain");
        if (cols.count("year"))
            chip.year = toDouble(row[cols["year"]], "year");
        chips.push_back(std::move(chip));
    }

    potential::PotentialModel model;
    auto series = csr::csrSeries(chips, model, metric);

    std::cout << "CSR analysis (" << csr::metricName(metric)
              << "), normalized to " << chips.front().name << ":\n";
    Table t({"Chip", "Gain", "CMOS-driven", "CSR"});
    for (const auto &pt : series) {
        t.addRow({pt.name, fmtGain(pt.rel_gain, 2),
                  fmtGain(pt.rel_phy, 2), fmtGain(pt.csr, 2)});
    }
    t.print(std::cout);
    return 0;
}
