/**
 * @file
 * accelwall_serve: the embedded query-service daemon.
 *
 * Usage:
 *   accelwall-serve [--host H] [--port P] [--workers N] [--queue N]
 *                   [--cache-entries N] [--deadline-ms N] [--jobs N]
 *                   [--max-sweep-cells N] [--max-chiplet-cells N]
 *                   [--port-file PATH] [--version]
 *
 * Binds, prints the serving address, and runs until SIGINT/SIGTERM,
 * which trigger a graceful drain: the listener closes, every accepted
 * request is answered, then the process exits 0. `--port 0` (the
 * default) asks the kernel for an ephemeral port; `--port-file`
 * writes the bound port to a file so scripts (the loadgen smoke test)
 * can find it without parsing stdout.
 *
 * Endpoints and request schemas: README "Serving" and DESIGN.md §8.
 * Usage errors exit 2; bind failures exit 1.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "cli_util.hh"
#include "serve/server.hh"
#include "util/logging.hh"

using namespace accelwall;

namespace
{

int
usage()
{
    std::cerr
        << "usage: accelwall-serve [--host H] [--port P] [--workers N]\n"
           "           [--queue N] [--cache-entries N] [--deadline-ms N]\n"
           "           [--jobs N] [--max-sweep-cells N]\n"
           "           [--max-chiplet-cells N] [--port-file PATH]\n"
           "           [--version]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::handleVersion(argc, argv, "accelwall-serve");

    serve::ServerOptions options;
    options.service.version = cli::kVersion;
    std::string port_file;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto intFlag = [&](int &out) {
            return i + 1 < argc && cli::parseInt(argv[++i], out);
        };
        int value = 0;
        if (arg == "--host" && i + 1 < argc) {
            options.host = argv[++i];
        } else if (arg == "--port" && intFlag(value) && value >= 0 &&
                   value <= 65535) {
            options.port = value;
        } else if (arg == "--workers" && intFlag(value) && value > 0) {
            options.workers = value;
        } else if (arg == "--queue" && intFlag(value) && value >= 0) {
            options.accept_queue = static_cast<std::size_t>(value);
        } else if (arg == "--cache-entries" && intFlag(value) &&
                   value >= 0) {
            options.service.cache_entries =
                static_cast<std::size_t>(value);
        } else if (arg == "--deadline-ms" && intFlag(value) && value > 0) {
            options.limits.read_deadline_ms = value;
        } else if (arg == "--jobs" && intFlag(value) && value >= 0) {
            options.service.sweep_jobs = value;
        } else if (arg == "--max-sweep-cells" && intFlag(value) &&
                   value > 0) {
            options.service.max_sweep_cells =
                static_cast<std::size_t>(value);
        } else if (arg == "--max-chiplet-cells" && intFlag(value) &&
                   value > 0) {
            options.service.max_chiplet_cells =
                static_cast<std::size_t>(value);
        } else if (arg == "--port-file" && i + 1 < argc) {
            port_file = argv[++i];
        } else {
            return usage();
        }
    }

    serve::Server server(options);
    if (auto started = server.start(); !started.ok())
        fatal(started.error().str());
    server.installSignalHandlers();

    if (!port_file.empty()) {
        // Written after start() so a reader never sees a port that is
        // not yet accepting connections.
        std::ofstream out(port_file);
        if (!out)
            fatal("cannot write port file '", port_file, "'");
        out << server.port() << "\n";
    }

    std::cout << "accelwall-serve " << cli::kVersion << " listening on "
              << options.host << ":" << server.port() << " ("
              << options.workers << " workers, queue "
              << options.accept_queue << ")" << std::endl;

    server.waitUntilStopped();

    const auto &metrics = server.service().metrics();
    std::cout << "drained: " << metrics.totalRequests()
              << " requests served, " << metrics.shedCount() << " shed"
              << std::endl;
    return 0;
}
